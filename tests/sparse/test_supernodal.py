"""Tests of the supernodal/blocked sparse kernel layer.

Covers supernode detection on hand-built elimination trees, blocked-vs-scalar
equality of the numeric factorization and of every triangular kernel across
heat/elasticity 2D/3D patterns, the level schedule, the per-column
``start_rows`` grouping, the prepared generic CSC factor, and the structural
pattern cache.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.linalg as spla
from hypothesis import given, settings, strategies as st

from repro.decomposition import regularize_stiffness
from repro.fem.elasticity import LinearElasticityProblem
from repro.fem.heat import HeatTransferProblem
from repro.fem.mesh import structured_mesh
from repro.sparse import (
    OrderingMethod,
    PatternCache,
    PreparedCscFactor,
    detect_supernodes,
    elimination_levels,
    numeric_cholesky,
    prepare_csc_factor,
    sparse_trsm_lower,
    sparse_trsm_upper,
    sparse_trsv_lower,
    sparse_trsv_upper,
    structural_key,
    symbolic_cholesky,
)
from repro.sparse.solvers import CholmodLikeSolver, PardisoLikeSolver

from tests.conftest import random_spd_matrix


def _fem_matrix(physics, dim: int, cells: int = 3):
    """A regularized FEM stiffness matrix (the paper's subdomain workload)."""
    mesh = structured_mesh(dim, cells, order=1)
    K = physics.assemble_stiffness(mesh)
    dofs_per_node = 1 if isinstance(physics, HeatTransferProblem) else dim
    reg = regularize_stiffness(K, physics.kernel_basis(mesh), mesh, dofs_per_node)
    return reg.K_reg


FEM_CASES = [
    pytest.param(HeatTransferProblem(), 2, id="heat-2d"),
    pytest.param(HeatTransferProblem(), 3, id="heat-3d"),
    pytest.param(LinearElasticityProblem(), 2, id="elasticity-2d"),
    pytest.param(LinearElasticityProblem(), 3, id="elasticity-3d"),
]


# --------------------------------------------------------------------- #
# Supernode detection on hand-built elimination trees                    #
# --------------------------------------------------------------------- #
def test_detect_supernodes_merges_strict_chain():
    """A chain with exactly nested patterns collapses into one supernode."""
    # Dense 4x4 factor: parent chain 0->1->2->3, counts 4,3,2,1.
    parent = np.array([1, 2, 3, -1])
    counts = np.array([4, 3, 2, 1])
    ptr = detect_supernodes(parent, counts, relax=0.0)
    assert ptr.tolist() == [0, 4]


def test_detect_supernodes_splits_at_tree_branches():
    """Columns whose parent is not the next column never merge."""
    # Two leaves (0, 1) both pointing at 2: 0 cannot chain into 1, and with
    # relax=0 the 1->2 merge would need padding, so only 2->3 merges.
    parent = np.array([2, 2, 3, -1])
    counts = np.array([2, 2, 2, 1])
    ptr = detect_supernodes(parent, counts, relax=0.0)
    assert ptr.tolist() == [0, 1, 2, 4]
    # fully relaxed, only the tree branch still splits
    assert detect_supernodes(parent, counts, relax=1.0).tolist() == [0, 1, 4]


def test_detect_supernodes_strict_rejects_padding():
    """With relax=0 a count mismatch on a parent chain blocks the merge."""
    # Chain 0->1->2 but column 0 has fewer rows than nestedness would allow:
    # counts 2,3,2 mean merging 0 into 1 needs two padding zeros, while the
    # 1->2 merge is exact (count drops by one along the chain).
    parent = np.array([1, 2, -1])
    counts = np.array([2, 3, 2])
    strict = detect_supernodes(parent, counts, relax=0.0)
    assert strict.tolist() == [0, 1, 3]
    relaxed = detect_supernodes(parent, counts, relax=0.5)
    assert relaxed.tolist() == [0, 3]


def test_detect_supernodes_honors_max_width():
    n = 10
    parent = np.concatenate([np.arange(1, n), [-1]])
    counts = np.arange(n, 0, -1)
    ptr = detect_supernodes(parent, counts, relax=0.0, max_width=4)
    assert ptr.tolist() == [0, 4, 8, 10]
    assert np.all(np.diff(ptr) <= 4)


def test_elimination_levels_of_a_chain_and_a_star():
    chain = np.array([1, 2, 3, -1])
    assert elimination_levels(chain).tolist() == [0, 1, 2, 3]
    star = np.array([3, 3, 3, -1])
    assert elimination_levels(star).tolist() == [0, 0, 0, 1]


def test_partition_covers_all_columns_and_pattern():
    A = _fem_matrix(HeatTransferProblem(), 2)
    s = symbolic_cholesky(A)
    part = s.supernodes
    assert part is not None
    assert part.snode_ptr[0] == 0 and part.snode_ptr[-1] == s.n
    assert np.all(np.diff(part.snode_ptr) >= 1)
    assert part.col_to_snode.shape == (s.n,)
    # every stored entry of L has a unique panel position
    assert part.lpos.shape == (s.nnz,)
    assert np.unique(part.lpos).shape == (s.nnz,)
    assert part.panel_entries >= s.nnz
    assert 0.0 <= part.padding_ratio() < 1.0
    assert part.mean_width >= 1.0


# --------------------------------------------------------------------- #
# Blocked vs scalar equality on FEM patterns                             #
# --------------------------------------------------------------------- #
@pytest.mark.parametrize(("physics", "dim"), FEM_CASES)
def test_blocked_factorization_matches_scalar_on_fem_patterns(physics, dim):
    A = _fem_matrix(physics, dim)
    s = symbolic_cholesky(A)
    fb = numeric_cholesky(A, s, blocked=True)
    fs = numeric_cholesky(A, s, blocked=False)
    scale = np.abs(fs.values).max()
    assert np.allclose(fb.values, fs.values, atol=1e-12 * scale)
    # and the factor actually reconstructs the permuted matrix
    L = fb.to_csc().toarray()
    Ap = A.toarray()[np.ix_(s.perm, s.perm)]
    assert np.allclose(L @ L.T, Ap, atol=1e-10 * np.abs(Ap).max())


@pytest.mark.parametrize(("physics", "dim"), FEM_CASES)
def test_blocked_triangular_kernels_match_scalar_and_scipy(physics, dim):
    A = _fem_matrix(physics, dim)
    s = symbolic_cholesky(A)
    f = numeric_cholesky(A, s)
    rng = np.random.default_rng(dim)
    b = rng.standard_normal(s.n)
    B = rng.standard_normal((s.n, 5))
    L = f.to_csc()

    y_ref = spla.spsolve_triangular(L.tocsr(), b, lower=True)
    assert np.allclose(sparse_trsv_lower(f, b), y_ref)
    assert np.allclose(sparse_trsv_lower(f, b, blocked=False), y_ref)

    x_ref = spla.spsolve_triangular(L.T.tocsr(), b, lower=False)
    assert np.allclose(sparse_trsv_upper(f, b), x_ref)
    assert np.allclose(sparse_trsv_upper(f, b, blocked=False), x_ref)

    Yb = sparse_trsm_lower(f, B)
    assert np.allclose(Yb, sparse_trsm_lower(f, B, blocked=False))
    Xb = sparse_trsm_upper(f, Yb)
    assert np.allclose(Xb, sparse_trsm_upper(f, Yb, blocked=False))
    assert np.allclose(L.toarray() @ Yb, B)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=30),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_property_blocked_equals_scalar_on_random_spd(n, seed):
    """Property: blocked and scalar paths agree on arbitrary SPD patterns."""
    rng = np.random.default_rng(seed)
    A = random_spd_matrix(n, 0.3, rng)
    s = symbolic_cholesky(A)
    fb = numeric_cholesky(A, s, blocked=True)
    fs = numeric_cholesky(A, s, blocked=False)
    assert np.allclose(fb.values, fs.values, atol=1e-10 * max(1.0, np.abs(fs.values).max()))
    b = rng.standard_normal(n)
    assert np.allclose(
        sparse_trsv_lower(fb, b), sparse_trsv_lower(fs, b, blocked=False)
    )
    assert np.allclose(
        sparse_trsv_upper(fb, b), sparse_trsv_upper(fs, b, blocked=False)
    )


def test_level_scheduled_fallback_matches_scalar():
    """Factors without supernodes use the level-parallel solve."""
    rng = np.random.default_rng(11)
    A = random_spd_matrix(40, 0.1, rng)
    s = symbolic_cholesky(A, supernodes=False)
    assert s.supernodes is None and s.levels is not None
    f = numeric_cholesky(A, s)  # falls back to the scalar column path
    b = rng.standard_normal(40)
    assert np.allclose(
        sparse_trsv_lower(f, b), sparse_trsv_lower(f, b, blocked=False)
    )
    assert np.allclose(
        sparse_trsv_upper(f, b), sparse_trsv_upper(f, b, blocked=False)
    )


def test_trsm_per_column_start_rows_groups_columns():
    rng = np.random.default_rng(5)
    A = _fem_matrix(HeatTransferProblem(), 2)
    s = symbolic_cholesky(A)
    f = numeric_cholesky(A, s)
    nrhs = 9
    starts = rng.integers(0, s.n, size=nrhs)
    starts[0], starts[-1] = s.n - 1, 0  # extreme groups
    B = np.zeros((s.n, nrhs))
    for j, st0 in enumerate(starts):
        B[st0:, j] = rng.standard_normal(s.n - int(st0))
    dense = sparse_trsm_lower(f, B)
    for blocked in (True, False):
        grouped = sparse_trsm_lower(f, B, start_rows=starts, blocked=blocked)
        assert np.allclose(grouped, dense)


def test_trsm_start_rows_requires_one_entry_per_column():
    A = _fem_matrix(HeatTransferProblem(), 2)
    s = symbolic_cholesky(A)
    f = numeric_cholesky(A, s)
    with pytest.raises(ValueError, match="one entry per column"):
        sparse_trsm_lower(f, np.zeros((s.n, 3)), start_rows=np.array([0, 1]))


# --------------------------------------------------------------------- #
# Prepared generic CSC factors                                           #
# --------------------------------------------------------------------- #
def test_prepared_csc_factor_matches_unprepared_and_scipy():
    rng = np.random.default_rng(6)
    n = 40
    L = sp.tril(sp.random(n, n, density=0.15, random_state=rng)) + sp.diags(
        2.0 + rng.random(n)
    )
    L = sp.csc_matrix(L)
    prepared = prepare_csc_factor(L)
    b = rng.standard_normal(n)
    B = rng.standard_normal((n, 4))
    ref = spla.spsolve_triangular(L.tocsr(), b, lower=True)
    assert np.allclose(prepared.solve_lower(b), ref)
    assert np.allclose(prepared.solve_upper(b), spla.spsolve_triangular(L.T.tocsr(), b, lower=False))
    # 2-D, and the prepared object is accepted by the csc_trsm entry points
    from repro.sparse.triangular import csc_trsm_lower, csc_trsm_upper

    assert np.allclose(csc_trsm_lower(prepared, B), csc_trsm_lower(L, B))
    assert np.allclose(csc_trsm_upper(prepared, B), csc_trsm_upper(L, B))


def test_prepared_csc_factor_panels_on_banded_factor():
    """A Cholesky factor's CSC form produces usable panels generically."""
    A = _fem_matrix(HeatTransferProblem(), 2)
    s = symbolic_cholesky(A)
    f = numeric_cholesky(A, s)
    L = f.to_csc()
    prepared = prepare_csc_factor(L)
    assert prepared.partition is not None  # banded factors do coarsen
    rng = np.random.default_rng(7)
    B = rng.standard_normal((s.n, 3))
    scalar = PreparedCscFactor(L, blocked=False)
    assert scalar.partition is None
    assert np.allclose(prepared.solve_lower(B), scalar.solve_lower(B))
    assert np.allclose(prepared.solve_upper(B), scalar.solve_upper(B))


# --------------------------------------------------------------------- #
# Pattern cache                                                          #
# --------------------------------------------------------------------- #
def test_structural_key_ignores_values():
    rng = np.random.default_rng(8)
    A = random_spd_matrix(25, 0.2, rng)
    B = A.copy()
    B.data = B.data * 2.0
    assert structural_key(A) == structural_key(B)
    C = random_spd_matrix(25, 0.3, rng)
    assert structural_key(A) != structural_key(C)


def test_pattern_cache_shares_symbolic_across_same_pattern():
    rng = np.random.default_rng(9)
    A = random_spd_matrix(30, 0.2, rng)
    B = A.copy()
    B.data = B.data * 3.0
    cache = PatternCache()
    s1 = cache.symbolic_for(A)
    s2 = cache.symbolic_for(B)
    assert s1 is s2
    assert cache.hits == 1 and cache.misses == 1
    # different ordering -> different entry
    s3 = cache.symbolic_for(A, OrderingMethod.NATURAL)
    assert s3 is not s1
    assert cache.misses == 2
    assert 0.0 < cache.hit_rate < 1.0
    cache.clear()
    assert len(cache) == 0 and cache.hits == 0


def test_pattern_cache_eviction_is_bounded():
    rng = np.random.default_rng(10)
    cache = PatternCache(maxsize=2)
    for k in range(4):
        cache.symbolic_for(random_spd_matrix(10 + k, 0.3, rng))
    assert len(cache) == 2


def test_blocked_solvers_share_the_cache_and_match_scalar():
    """Same-pattern subdomains analyse once; results equal the scalar path."""
    rng = np.random.default_rng(12)
    A = _fem_matrix(HeatTransferProblem(), 2)
    cache = PatternCache()
    solvers = [PardisoLikeSolver(pattern_cache=cache) for _ in range(3)]
    matrices = []
    for solver in solvers:
        Ai = A.copy()
        Ai.data = Ai.data * rng.uniform(0.5, 2.0)
        solver.analyze(Ai)
        solver.factorize(Ai)
        matrices.append(Ai)
    assert cache.misses == 1 and cache.hits == 2
    assert solvers[0].symbolic is solvers[1].symbolic

    B = sp.random(6, A.shape[0], density=0.1, random_state=rng, format="csr")
    for solver, Ai in zip(solvers, matrices):
        scalar = CholmodLikeSolver(blocked=False)
        scalar.analyze(Ai)
        scalar.factorize(Ai)
        b = rng.standard_normal(A.shape[0])
        assert np.allclose(solver.solve(b), scalar.solve(b))
        assert np.allclose(
            solver.schur_complement(B), scalar.schur_complement(B)
        )


def test_scalar_solver_skips_the_global_cache():
    from repro.sparse.cache import global_pattern_cache

    cache = global_pattern_cache()
    cache.clear()
    rng = np.random.default_rng(13)
    A = random_spd_matrix(20, 0.3, rng)
    solver = PardisoLikeSolver(blocked=False)
    solver.analyze(A)
    assert cache.hits == 0 and cache.misses == 0
