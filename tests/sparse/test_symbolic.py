"""Tests of the symbolic Cholesky analysis."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.fem.heat import HeatTransferProblem
from repro.fem.mesh import structured_mesh
from repro.sparse import OrderingMethod, elimination_tree, symbolic_cholesky

from tests.conftest import random_spd_matrix


def _dense_cholesky_pattern(A: np.ndarray) -> np.ndarray:
    """Reference factor pattern from a dense Cholesky with explicit zeros kept."""
    L = np.linalg.cholesky(A)
    return np.abs(L) > 1e-14


@pytest.fixture(scope="module")
def spd_small():
    rng = np.random.default_rng(7)
    return random_spd_matrix(40, 0.12, rng)


def test_elimination_tree_structure(spd_small):
    lower = sp.tril(spd_small, format="csr")
    parent = elimination_tree(lower)
    n = spd_small.shape[0]
    assert parent.shape == (n,)
    # parents are later columns (or -1 for roots)
    for j, p in enumerate(parent):
        assert p == -1 or p > j
    # at least one root exists
    assert np.any(parent == -1)


@pytest.mark.parametrize("ordering", [OrderingMethod.NATURAL, OrderingMethod.RCM])
def test_pattern_contains_numeric_factor(spd_small, ordering):
    """The symbolic pattern covers every structurally possible nonzero of L."""
    s = symbolic_cholesky(spd_small, ordering=ordering)
    A = spd_small.toarray()[np.ix_(s.perm, s.perm)]
    dense_pattern = _dense_cholesky_pattern(A)
    symbolic_pattern = np.zeros_like(dense_pattern)
    for j in range(s.n):
        rows = s.row_idx[s.col_ptr[j] : s.col_ptr[j + 1]]
        symbolic_pattern[rows, j] = True
    # every numeric nonzero is predicted symbolically (no cancellation misses)
    assert np.all(symbolic_pattern | ~dense_pattern)


def test_columns_start_with_diagonal(spd_small):
    s = symbolic_cholesky(spd_small)
    for j in range(s.n):
        rows = s.row_idx[s.col_ptr[j] : s.col_ptr[j + 1]]
        assert rows[0] == j
        assert np.all(np.diff(rows) > 0)


def test_column_counts_consistent(spd_small):
    s = symbolic_cholesky(spd_small)
    assert s.column_counts.sum() == s.nnz
    assert s.nnz == s.row_idx.shape[0]
    assert 0.0 < s.factor_density() <= 1.0
    assert s.fill_ratio >= 1.0


def test_flop_estimates_positive_and_monotone():
    mesh_small = structured_mesh(2, 3, order=1)
    mesh_large = structured_mesh(2, 6, order=1)
    heat = HeatTransferProblem()
    reg = sp.identity(mesh_small.nnodes)
    s_small = symbolic_cholesky(heat.assemble_stiffness(mesh_small) + reg)
    s_large = symbolic_cholesky(
        heat.assemble_stiffness(mesh_large) + sp.identity(mesh_large.nnodes)
    )
    assert 0 < s_small.factorization_flops() < s_large.factorization_flops()
    assert s_small.solve_flops(1) < s_small.solve_flops(10)


def test_tridiagonal_has_no_fill():
    n = 25
    main = 2.0 * np.ones(n)
    off = -1.0 * np.ones(n - 1)
    A = sp.diags([off, main, off], [-1, 0, 1]).tocsr()
    s = symbolic_cholesky(A, ordering=OrderingMethod.NATURAL)
    assert s.nnz == 2 * n - 1
    assert s.fill_ratio == pytest.approx(1.0)
    # elimination tree of a tridiagonal matrix is a chain
    assert np.array_equal(s.parent[:-1], np.arange(1, n))


def test_externally_supplied_permutation(spd_small):
    n = spd_small.shape[0]
    perm = np.arange(n)[::-1].copy()
    s = symbolic_cholesky(spd_small, perm=perm)
    assert np.array_equal(s.perm, perm)
    with pytest.raises(ValueError):
        symbolic_cholesky(spd_small, perm=perm[:-1])


def test_non_square_rejected():
    with pytest.raises(ValueError):
        symbolic_cholesky(sp.csr_matrix(np.ones((3, 4))))
