"""Tests of the Schur-complement (explicit dual operator) assembly on the CPU."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.sparse import numeric_cholesky, schur_complement, symbolic_cholesky
from repro.sparse.schur import rhs_sparsity_fill

from tests.conftest import random_spd_matrix


@pytest.fixture(scope="module")
def factorized():
    rng = np.random.default_rng(9)
    A = random_spd_matrix(50, 0.1, rng)
    s = symbolic_cholesky(A)
    return A, numeric_cholesky(A, s)


@pytest.mark.parametrize("exploit", [True, False])
def test_schur_matches_dense_reference(factorized, exploit):
    A, factor = factorized
    rng = np.random.default_rng(1)
    B = sp.random(8, 50, density=0.08, random_state=rng).tocsr()
    S = schur_complement(factor, B, exploit_rhs_sparsity=exploit)
    S_ref = (B @ np.linalg.inv(A.toarray()) @ B.T.toarray())
    assert np.allclose(S, S_ref, atol=1e-8 * max(1.0, np.abs(S_ref).max()))
    assert np.allclose(S, S.T, atol=1e-10)


def test_schur_with_signed_boolean_constraints(factorized):
    """The FETI gluing matrices have ±1 entries; the result must stay symmetric PSD."""
    A, factor = factorized
    rows = np.repeat(np.arange(6), 2)
    cols = np.arange(12)
    vals = np.tile([1.0, -1.0], 6)
    B = sp.coo_matrix((vals, (rows, cols)), shape=(6, 50)).tocsr()
    S = schur_complement(factor, B)
    eigs = np.linalg.eigvalsh(S)
    assert eigs.min() > -1e-12
    S_ref = B @ np.linalg.inv(A.toarray()) @ B.T.toarray()
    assert np.allclose(S, S_ref, atol=1e-9)


def test_exploiting_sparsity_gives_identical_result(factorized):
    _, factor = factorized
    rng = np.random.default_rng(3)
    B = sp.random(5, 50, density=0.05, random_state=rng).tocsr()
    assert np.allclose(
        schur_complement(factor, B, exploit_rhs_sparsity=True),
        schur_complement(factor, B, exploit_rhs_sparsity=False),
    )


def test_rhs_sparsity_fill_bounds(factorized):
    _, factor = factorized
    perm = factor.symbolic.perm
    rng = np.random.default_rng(4)
    B = sp.random(10, 50, density=0.05, random_state=rng).tocsr()
    fill = rhs_sparsity_fill(B, perm)
    assert 0.0 < fill <= 1.0
    # a fully dense B cannot be exploited at all
    dense_B = sp.csr_matrix(np.ones((3, 50)))
    assert rhs_sparsity_fill(dense_B, perm) == pytest.approx(1.0)
    # an empty B gives the neutral value 1.0
    assert rhs_sparsity_fill(sp.csr_matrix((0, 50)), perm) == 1.0


def test_empty_constraint_block(factorized):
    _, factor = factorized
    B = sp.csr_matrix((0, 50))
    S = schur_complement(factor, B)
    assert S.shape == (0, 0)
