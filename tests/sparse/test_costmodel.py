"""Tests of the CPU cost model."""

from __future__ import annotations

import pytest

from repro.sparse.costmodel import CpuCostModel, CpuLibrary


@pytest.fixture(scope="module")
def model():
    return CpuCostModel()


def test_all_costs_positive(model):
    assert model.symbolic_factorization(1000, 5000) > 0
    assert model.numeric_factorization(1e6, 5000, CpuLibrary.CHOLMOD) > 0
    assert model.factor_extraction(5000) > 0
    assert model.sparse_trsv(5000) > 0
    assert model.sparse_trsm(5000, 100) > 0
    assert model.spmv(2000) > 0
    assert model.spmm(2000, 50) > 0
    assert model.gemv(300, 300) > 0
    assert model.syrk(300, 2000) > 0
    assert model.schur_complement(5000, 1e6, 100, 0.5, CpuLibrary.MKL_PARDISO) > 0


def test_costs_monotone_in_size(model):
    assert model.numeric_factorization(1e7, 5_000, CpuLibrary.CHOLMOD) < \
        model.numeric_factorization(1e8, 50_000, CpuLibrary.CHOLMOD)
    assert model.sparse_trsm(5000, 10) < model.sparse_trsm(5000, 1000)
    assert model.gemv(100, 100) < model.gemv(1000, 1000)


def test_mkl_factorization_speedup_decays_with_size(model):
    """MKL is ~2x faster for small factors, on par for very large ones."""
    small_ratio = model.numeric_factorization(
        1e6, 10_000, CpuLibrary.CHOLMOD
    ) / model.numeric_factorization(1e6, 10_000, CpuLibrary.MKL_PARDISO)
    large_ratio = model.numeric_factorization(
        1e11, 4e8, CpuLibrary.CHOLMOD
    ) / model.numeric_factorization(1e11, 4e8, CpuLibrary.MKL_PARDISO)
    assert small_ratio > 1.6
    assert large_ratio < 1.2


def test_schur_complement_exploits_rhs_sparsity_only_for_mkl(model):
    kwargs = dict(factor_nnz=200_000, factorization_flops=5e7, n_dual=400, ndofs=4000)
    mkl_sparse = model.schur_complement(rhs_fill=0.1, library=CpuLibrary.MKL_PARDISO, **kwargs)
    mkl_dense = model.schur_complement(rhs_fill=1.0, library=CpuLibrary.MKL_PARDISO, **kwargs)
    cholmod_sparse = model.schur_complement(rhs_fill=0.1, library=CpuLibrary.CHOLMOD, **kwargs)
    cholmod_dense = model.schur_complement(rhs_fill=1.0, library=CpuLibrary.CHOLMOD, **kwargs)
    assert mkl_sparse < mkl_dense
    assert cholmod_sparse == pytest.approx(cholmod_dense)
    # CHOLMOD's plain TRSM approach is the slowest explicit CPU assembly
    assert cholmod_dense > mkl_sparse
    # the explicit assembly always costs at least the factorization alone
    assert mkl_sparse > model.numeric_factorization(5e7, 200_000, CpuLibrary.MKL_PARDISO)


def test_overhead_floor(model):
    assert model.spmv(0) >= model.call_overhead_seconds
    assert model.gemv(1, 1) >= model.call_overhead_seconds
