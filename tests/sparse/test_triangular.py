"""Tests of the sparse triangular solves."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.sparse import (
    numeric_cholesky,
    sparse_trsm_lower,
    sparse_trsm_upper,
    sparse_trsv_lower,
    sparse_trsv_upper,
    symbolic_cholesky,
)
from repro.sparse.triangular import csc_trsm_lower, csc_trsm_upper

from tests.conftest import random_spd_matrix


@pytest.fixture(scope="module")
def factor():
    rng = np.random.default_rng(42)
    A = random_spd_matrix(60, 0.08, rng)
    s = symbolic_cholesky(A)
    return numeric_cholesky(A, s)


def test_trsv_lower_upper_roundtrip(factor):
    rng = np.random.default_rng(0)
    b = rng.standard_normal(factor.n)
    L = factor.to_csc().toarray()
    y = sparse_trsv_lower(factor, b)
    assert np.allclose(L @ y, b)
    x = sparse_trsv_upper(factor, y)
    assert np.allclose(L.T @ x, y)
    # together they solve (L L^T) x = b
    assert np.allclose(L @ (L.T @ x), b)


def test_trsm_matches_trsv_per_column(factor):
    rng = np.random.default_rng(1)
    B = rng.standard_normal((factor.n, 5))
    Y = sparse_trsm_lower(factor, B)
    for j in range(5):
        assert np.allclose(Y[:, j], sparse_trsv_lower(factor, B[:, j]))
    X = sparse_trsm_upper(factor, Y)
    L = factor.to_csc().toarray()
    assert np.allclose(L.T @ X, Y)


def test_trsv_start_row_skips_leading_zeros(factor):
    rng = np.random.default_rng(2)
    b = np.zeros(factor.n)
    b[20:] = rng.standard_normal(factor.n - 20)
    full = sparse_trsv_lower(factor, b)
    skipped = sparse_trsv_lower(factor, b, start_row=20)
    assert np.allclose(full, skipped)


def test_trsm_start_rows_skips_leading_zeros(factor):
    rng = np.random.default_rng(3)
    B = np.zeros((factor.n, 3))
    starts = np.array([10, 25, 40])
    for j, s0 in enumerate(starts):
        B[s0:, j] = rng.standard_normal(factor.n - s0)
    assert np.allclose(
        sparse_trsm_lower(factor, B),
        sparse_trsm_lower(factor, B, start_rows=starts),
    )


def test_trsm_rejects_bad_shapes(factor):
    with pytest.raises(ValueError):
        sparse_trsm_lower(factor, np.zeros((factor.n + 1, 2)))
    with pytest.raises(ValueError):
        sparse_trsm_upper(factor, np.zeros(factor.n))


def test_csc_variants_match_factor_variants(factor):
    rng = np.random.default_rng(4)
    B = rng.standard_normal((factor.n, 4))
    L = factor.to_csc()
    assert np.allclose(csc_trsm_lower(L, B), sparse_trsm_lower(factor, B))
    assert np.allclose(csc_trsm_upper(L, B), sparse_trsm_upper(factor, B))
    # 1-D right-hand sides are supported by the generic variants
    b = rng.standard_normal(factor.n)
    assert np.allclose(csc_trsm_lower(L, b), sparse_trsv_lower(factor, b))
    assert np.allclose(csc_trsm_upper(L, b), sparse_trsv_upper(factor, b))


def test_csc_solve_against_scipy():
    rng = np.random.default_rng(5)
    n = 35
    L = sp.tril(sp.random(n, n, density=0.2, random_state=rng)) + sp.diags(
        2.0 + rng.random(n)
    )
    L = sp.csc_matrix(L)
    b = rng.standard_normal(n)
    import scipy.sparse.linalg as spla

    expected = spla.spsolve_triangular(L.tocsr(), b, lower=True)
    assert np.allclose(csc_trsm_lower(L, b), expected)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=25),
    nrhs=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_property_forward_backward_solve_inverts_normal_equations(n, nrhs, seed):
    """Property: the two triangular solves invert ``P A Pᵀ`` for any SPD A."""
    rng = np.random.default_rng(seed)
    A = random_spd_matrix(n, 0.3, rng)
    s = symbolic_cholesky(A)
    f = numeric_cholesky(A, s)
    B = rng.standard_normal((n, nrhs))
    X = sparse_trsm_upper(f, sparse_trsm_lower(f, B))
    Ap = A.toarray()[np.ix_(s.perm, s.perm)]
    assert np.allclose(Ap @ X, B, atol=1e-7 * max(1.0, np.abs(Ap).max()))
