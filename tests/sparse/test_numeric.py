"""Tests of the numeric Cholesky factorization, including property-based ones."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.fem.elasticity import LinearElasticityProblem
from repro.fem.heat import HeatTransferProblem
from repro.fem.mesh import structured_mesh
from repro.decomposition import regularize_stiffness
from repro.sparse import OrderingMethod, numeric_cholesky, symbolic_cholesky
from repro.sparse.numeric import NotPositiveDefiniteError

from tests.conftest import random_spd_matrix


@pytest.mark.parametrize("ordering", list(OrderingMethod))
@pytest.mark.parametrize("n,density", [(10, 0.3), (60, 0.08), (150, 0.03)])
def test_factorization_reconstructs_matrix(ordering, n, density):
    rng = np.random.default_rng(n)
    A = random_spd_matrix(n, density, rng)
    s = symbolic_cholesky(A, ordering=ordering)
    f = numeric_cholesky(A, s)
    L = f.to_csc().toarray()
    Ap = A.toarray()[np.ix_(s.perm, s.perm)]
    assert np.allclose(L @ L.T, Ap, atol=1e-9 * np.abs(Ap).max())
    assert np.allclose(np.triu(L, 1), 0.0)
    assert np.all(f.diagonal() > 0.0)


@pytest.mark.parametrize(
    ("physics", "dim", "order"),
    [
        (HeatTransferProblem(), 2, 1),
        (HeatTransferProblem(), 3, 1),
        (LinearElasticityProblem(), 2, 2),
    ],
)
def test_factorization_of_regularized_fem_matrices(physics, dim, order):
    mesh = structured_mesh(dim, 2, order=order)
    K = physics.assemble_stiffness(mesh)
    dofs_per_node = 1 if isinstance(physics, HeatTransferProblem) else dim
    reg = regularize_stiffness(K, physics.kernel_basis(mesh), mesh, dofs_per_node)
    s = symbolic_cholesky(reg.K_reg)
    f = numeric_cholesky(reg.K_reg, s)
    L = f.to_csc().toarray()
    Ap = reg.K_reg.toarray()[np.ix_(s.perm, s.perm)]
    assert np.allclose(L @ L.T, Ap, atol=1e-10 * np.abs(Ap).max())


def test_upper_factor_view_is_transpose():
    rng = np.random.default_rng(5)
    A = random_spd_matrix(30, 0.15, rng)
    s = symbolic_cholesky(A)
    f = numeric_cholesky(A, s)
    assert np.allclose(f.to_csr_upper().toarray(), f.to_csc().toarray().T)
    assert f.n == 30
    assert f.nnz == s.nnz


def test_indefinite_matrix_raises():
    A = sp.csr_matrix(np.array([[1.0, 2.0], [2.0, 1.0]]))  # eigenvalues 3, -1
    s = symbolic_cholesky(A)
    with pytest.raises(NotPositiveDefiniteError):
        numeric_cholesky(A, s)


def test_refactorization_with_new_values_same_pattern():
    """The symbolic analysis is reusable across numeric refactorizations."""
    rng = np.random.default_rng(11)
    A = random_spd_matrix(50, 0.1, rng)
    s = symbolic_cholesky(A)
    f1 = numeric_cholesky(A, s)
    A2 = (2.5 * A).tocsr()
    f2 = numeric_cholesky(A2, s)
    assert np.allclose(f2.values, np.sqrt(2.5) * f1.values)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=28),
    density=st.floats(min_value=0.05, max_value=0.5),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_property_factorization_roundtrip(n, density, seed):
    """Property: for any random SPD matrix, L Lᵀ reproduces P A Pᵀ."""
    rng = np.random.default_rng(seed)
    A = random_spd_matrix(n, density, rng)
    s = symbolic_cholesky(A, ordering=OrderingMethod.RCM)
    f = numeric_cholesky(A, s)
    L = f.to_csc().toarray()
    Ap = A.toarray()[np.ix_(s.perm, s.perm)]
    assert np.allclose(L @ L.T, Ap, atol=1e-8 * max(1.0, np.abs(Ap).max()))


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=20),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_property_diagonal_dominant_band_matrix(n, seed):
    """Property: banded diagonally dominant matrices factorize without fill errors."""
    rng = np.random.default_rng(seed)
    off = -rng.random(n - 1)
    main = 2.0 + np.abs(off).max() * 2.0 + rng.random(n)
    A = sp.diags([off, main, off], [-1, 0, 1]).tocsr()
    s = symbolic_cholesky(A, ordering=OrderingMethod.NATURAL)
    f = numeric_cholesky(A, s)
    L = f.to_csc().toarray()
    assert np.allclose(L @ L.T, A.toarray(), atol=1e-10)
