"""Tests of the fill-reducing orderings."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.fem.heat import HeatTransferProblem
from repro.fem.mesh import structured_mesh
from repro.sparse import OrderingMethod, compute_ordering, symbolic_cholesky


@pytest.fixture(scope="module")
def fem_matrix():
    mesh = structured_mesh(2, 4, order=1)
    K = HeatTransferProblem().assemble_stiffness(mesh)
    return (K + sp.identity(K.shape[0])).tocsr()


@pytest.mark.parametrize("method", list(OrderingMethod))
def test_ordering_is_a_permutation(fem_matrix, method):
    perm = compute_ordering(fem_matrix, method)
    n = fem_matrix.shape[0]
    assert perm.shape == (n,)
    assert np.array_equal(np.sort(perm), np.arange(n))


@pytest.mark.parametrize("method", ["natural", "rcm", "amd"])
def test_string_method_accepted(fem_matrix, method):
    perm = compute_ordering(fem_matrix, method)
    assert perm.size == fem_matrix.shape[0]


def test_natural_is_identity(fem_matrix):
    perm = compute_ordering(fem_matrix, OrderingMethod.NATURAL)
    assert np.array_equal(perm, np.arange(fem_matrix.shape[0]))


@pytest.mark.parametrize("method", [OrderingMethod.RCM, OrderingMethod.AMD])
def test_fill_reducing_orderings_reduce_fill(fem_matrix, method):
    natural = symbolic_cholesky(fem_matrix, ordering=OrderingMethod.NATURAL)
    reordered = symbolic_cholesky(fem_matrix, ordering=method)
    assert reordered.nnz <= natural.nnz


def test_amd_on_arrow_matrix_beats_natural():
    """The arrow matrix is the classic example where ordering matters."""
    n = 30
    rows = [0] * (n - 1) + list(range(1, n)) + list(range(n))
    cols = list(range(1, n)) + [0] * (n - 1) + list(range(n))
    vals = [1.0] * (2 * (n - 1)) + [float(n)] * n
    arrow = sp.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()
    natural = symbolic_cholesky(arrow, ordering=OrderingMethod.NATURAL)
    amd = symbolic_cholesky(arrow, ordering=OrderingMethod.AMD)
    assert natural.nnz == n * (n + 1) // 2  # full fill-in
    assert amd.nnz == 2 * n - 1  # no fill-in with the hub eliminated last


def test_non_square_rejected():
    with pytest.raises(ValueError):
        compute_ordering(sp.csr_matrix(np.ones((2, 3))), OrderingMethod.RCM)
