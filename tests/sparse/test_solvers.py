"""Tests of the CHOLMOD-like / PARDISO-like solver facades."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.sparse import (
    CholmodLikeSolver,
    CpuLibrary,
    FactorExtractionError,
    PardisoLikeSolver,
)

from tests.conftest import random_spd_matrix


@pytest.fixture(scope="module")
def spd():
    rng = np.random.default_rng(17)
    return random_spd_matrix(70, 0.07, rng)


@pytest.mark.parametrize("solver_cls", [CholmodLikeSolver, PardisoLikeSolver])
def test_solve_roundtrip(spd, solver_cls):
    solver = solver_cls()
    solver.analyze(spd)
    solver.factorize(spd)
    rng = np.random.default_rng(0)
    b = rng.standard_normal(70)
    x = solver.solve(b)
    assert np.allclose(spd @ x, b, atol=1e-9)
    X = solver.solve_many(rng.standard_normal((70, 3)))
    assert X.shape == (70, 3)


def test_factorize_without_analyze_runs_analysis(spd):
    solver = CholmodLikeSolver()
    solver.factorize(spd)
    assert solver.is_factorized
    assert solver.factor_nnz > 0


def test_phase_order_errors(spd):
    solver = CholmodLikeSolver()
    with pytest.raises(RuntimeError):
        _ = solver.symbolic
    solver.analyze(spd)
    with pytest.raises(RuntimeError):
        solver.solve(np.zeros(70))
    assert not solver.is_factorized


def test_cholmod_allows_extraction_pardiso_refuses(spd):
    cholmod = CholmodLikeSolver()
    cholmod.factorize(spd)
    factor = cholmod.extract_factor()
    L = factor.to_csc().toarray()
    Ap = spd.toarray()[np.ix_(factor.symbolic.perm, factor.symbolic.perm)]
    assert np.allclose(L @ L.T, Ap, atol=1e-9)

    pardiso = PardisoLikeSolver()
    pardiso.factorize(spd)
    with pytest.raises(FactorExtractionError):
        pardiso.extract_factor()


def test_library_identifiers():
    assert CholmodLikeSolver.library is CpuLibrary.CHOLMOD
    assert PardisoLikeSolver.library is CpuLibrary.MKL_PARDISO
    assert CholmodLikeSolver.supports_factor_extraction
    assert not PardisoLikeSolver.supports_factor_extraction


@pytest.mark.parametrize("solver_cls", [CholmodLikeSolver, PardisoLikeSolver])
def test_schur_complement_consistency(spd, solver_cls):
    """Both facades compute the same Schur complement (different algorithms)."""
    rng = np.random.default_rng(5)
    B = sp.random(6, 70, density=0.05, random_state=rng).tocsr()
    solver = solver_cls()
    solver.factorize(spd)
    S = solver.schur_complement(B)
    S_ref = B @ np.linalg.inv(spd.toarray()) @ B.T.toarray()
    assert np.allclose(S, S_ref, atol=1e-8)
    assert 0.0 < solver.rhs_fill(B) <= 1.0


def test_refactorization_updates_solution(spd):
    solver = CholmodLikeSolver()
    solver.factorize(spd)
    b = np.ones(70)
    x1 = solver.solve(b)
    solver.factorize((2.0 * spd).tocsr())
    x2 = solver.solve(b)
    assert np.allclose(x2, 0.5 * x1)
    assert solver.factorization_flops() > 0
