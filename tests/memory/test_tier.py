"""Tests of budget parsing and the LRU tier state machine."""

from __future__ import annotations

import pytest

from repro.memory.ledger import EntryBytes
from repro.memory.tier import BudgetError, FactorTier, parse_budget


# --------------------------------------------------------------------- #
# parse_budget                                                           #
# --------------------------------------------------------------------- #
@pytest.mark.parametrize(
    ("budget", "nbytes"),
    [
        (4096, 4096),
        (2.5e3, 2500),
        ("4096", 4096),
        ("512K", 512 * 1024),
        ("64M", 64 * 1024**2),
        ("1.5G", int(1.5 * 1024**3)),
        ("2T", 2 * 1024**4),
        ("64MB", 64 * 1024**2),
        ("64MiB", 64 * 1024**2),
        ("64m", 64 * 1024**2),
        (" 8K ", 8192),
    ],
)
def test_parse_budget_accepts_counts_and_binary_suffixes(budget, nbytes):
    assert parse_budget(budget) == nbytes


@pytest.mark.parametrize("budget", [None, "", "  ", "none", "NONE", "unlimited", "off"])
def test_parse_budget_disabled_spellings(budget):
    assert parse_budget(budget) is None


@pytest.mark.parametrize("budget", [0, -1, 0.0, "0", "-5", "lots", "64Q", "M"])
def test_parse_budget_rejects_garbage_and_non_positive(budget):
    with pytest.raises(BudgetError):
        parse_budget(budget)


# --------------------------------------------------------------------- #
# FactorTier                                                             #
# --------------------------------------------------------------------- #
def _kb(n: int) -> EntryBytes:
    return EntryBytes(factor_bytes=n * 1024)


def test_tier_without_budget_never_reports_over():
    tier = FactorTier(None)
    tier.record("a", _kb(1024), demotable=True)
    assert not tier.over_budget()
    assert tier.stats()["memory_budget_bytes"] is None


def test_victim_walk_is_lru_coldest_first():
    tier = FactorTier(budget_bytes=2 * 1024)
    tier.record("a", _kb(2), demotable=True)
    tier.record("b", _kb(2), demotable=True)
    assert tier.over_budget()
    assert tier.next_victim(set()) == ("a", "demote")
    # Touching "a" makes "b" the coldest.
    tier.touch("a")
    assert tier.next_victim(set()) == ("b", "demote")
    # The active entry is excluded.
    assert tier.next_victim({"b"}) == ("a", "demote")
    assert tier.next_victim({"a", "b"}) is None


def test_demote_then_evict_state_machine():
    tier = FactorTier(budget_bytes=1024)
    tier.record("a", _kb(2), demotable=True)
    assert tier.state("a") == "full"

    key, action = tier.next_victim(set())
    assert (key, action) == ("a", "demote")
    tier.mark_demoted("a", _kb(1))
    assert tier.state("a") == "demoted"
    assert tier.demotions == 1
    assert tier.ledger.resident_bytes == 1024  # halved measurement recorded

    # A demoted entry's next action is eviction, not a second demotion.
    tier.record("b", _kb(2), demotable=True)
    tier.touch("b")  # keep "a" coldest
    assert tier.next_victim({"b"}) == ("a", "evict")
    tier.mark_evicted("a")
    assert tier.state("a") is None
    assert tier.evictions == 1
    assert tier.ledger.resident_bytes == 2 * 1024


def test_non_demotable_entries_go_straight_to_eviction():
    """A spec already storing fp32 factors has nothing left to demote."""
    tier = FactorTier(budget_bytes=1024)
    tier.record("fp32-entry", _kb(2), demotable=False)
    assert tier.next_victim(set()) == ("fp32-entry", "evict")


def test_refactorization_counter_and_stats():
    tier = FactorTier(budget_bytes=10 * 1024)
    tier.record("a", _kb(4), demotable=True)
    tier.mark_demoted("a", _kb(2))
    tier.count_refactorization()
    stats = tier.stats()
    assert stats == {
        "memory_budget_bytes": 10 * 1024,
        "resident_bytes": 2 * 1024,
        "peak_resident_bytes": 4 * 1024,
        "resident_entries": 1,
        "demoted_entries": 1,
        "demotions": 1,
        "evictions": 0,
        "refactorizations": 1,
    }
    # Re-recording (the lazy re-factorization re-measuring) restores FULL.
    tier.record("a", _kb(4), demotable=True)
    assert tier.state("a") == "full"
    assert tier.stats()["demoted_entries"] == 0
