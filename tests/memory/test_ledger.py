"""Tests of the byte-accurate factor ledger."""

from __future__ import annotations

from repro.api import Session, SolverSpec, Workload
from repro.memory.ledger import EntryBytes, FactorLedger, measure_solver

W = Workload("heat", 2, (2, 1), 3)


def test_entry_bytes_total_and_dict():
    entry = EntryBytes(factor_bytes=100, pack_bytes=30, arena_bytes=7)
    assert entry.total == 137
    assert entry.to_dict() == {
        "factor_bytes": 100,
        "pack_bytes": 30,
        "arena_bytes": 7,
        "total_bytes": 137,
    }
    assert EntryBytes().total == 0


def test_ledger_used_peak_semantics():
    ledger = FactorLedger()
    ledger.record("a", EntryBytes(factor_bytes=1000))
    ledger.record("b", EntryBytes(factor_bytes=500, arena_bytes=100))
    assert ledger.resident_bytes == 1600
    assert ledger.peak_bytes == 1600
    assert len(ledger) == 2

    # Re-recording replaces, not accumulates.
    ledger.record("a", EntryBytes(factor_bytes=400))
    assert ledger.resident_bytes == 1000
    assert ledger.peak_bytes == 1600  # peak survives the shrink

    ledger.forget("b")
    assert ledger.resident_bytes == 400
    ledger.forget("missing")  # unknown keys are ignored
    assert ledger.resident_bytes == 400
    assert ledger.entry("b") is None
    assert ledger.entries() == {"a": EntryBytes(factor_bytes=400)}


def test_measure_solver_matches_the_operator_report_exactly():
    """The ledger must report real ndarray bytes, not estimates."""
    with Session(SolverSpec(approach="expl mkl")) as session:
        session.solve(W)
        solver = session.solver(W)
        report = solver.operator.storage_nbytes()
        entry = measure_solver(solver)
    assert entry.factor_bytes == report["factor"] > 0
    assert entry.pack_bytes == report["pack"]
    assert entry.arena_bytes == report["arena"]
    assert entry.total == sum(report.values())
    # The operator itself measures the same as its owning solver.
    assert measure_solver(solver.operator) == entry


def test_fp32_entry_measures_smaller_than_fp64():
    with Session(SolverSpec(approach="expl mkl")) as fp64:
        fp64.solve(W)
        full = measure_solver(fp64.solver(W))
    with Session(SolverSpec(approach="expl mkl", precision="fp32")) as fp32:
        fp32.solve(W)
        half = measure_solver(fp32.solver(W))
    assert full.factor_bytes == 2 * half.factor_bytes
    assert half.total < full.total
