"""The PR's accuracy gate: fp32 + iterative refinement across all backends.

Every registry approach must land within 10x of its own fp64 final residual
when the factors are stored in fp32 with refinement enabled.  Residuals are
measured against an *independent fp64 reference operator* — a reduced-
precision solver's own operator is made of the same rounded factors it
iterated on, so self-measured residuals are meaningless.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Session, SolverSpec, Workload
from repro.feti.config import DualOperatorApproach

W = Workload("heat", 2, (2, 2), 5)

APPROACHES = [a.value for a in DualOperatorApproach]


def _true_residual(ref_solver, lam: np.ndarray) -> float:
    d = ref_solver.operator.dual_rhs()
    r = d - ref_solver.operator.apply(lam)
    return float(np.linalg.norm(ref_solver.projector.apply(r)))


@pytest.mark.parametrize("approach", APPROACHES)
def test_fp32_ir_within_10x_of_fp64_residual(approach):
    with Session(SolverSpec(approach=approach)) as ref_session:
        ref_solution = ref_session.solve(W)
        ref_solver = ref_session.solver(W)
        assert ref_solution.converged
        fp64_res = _true_residual(ref_solver, ref_solution.lam)

        with Session(SolverSpec(approach=approach, precision="fp32_ir")) as ir_session:
            ir_solution = ir_session.solve(W)
        ir_res = _true_residual(ref_solver, ir_solution.lam)

    assert ir_res <= max(10.0 * fp64_res, 1e-11), (
        f"{approach}: fp32_ir true residual {ir_res:.3e} vs fp64 {fp64_res:.3e}"
    )


def test_fp32_without_refinement_stalls_above_fp64_level():
    """The control: rounded factors alone cannot reach fp64 residuals
    (otherwise the refinement tests above prove nothing)."""
    approach = "expl mkl"
    with Session(SolverSpec(approach=approach)) as ref_session:
        ref_solution = ref_session.solve(W)
        ref_solver = ref_session.solver(W)
        fp64_res = _true_residual(ref_solver, ref_solution.lam)

        with Session(SolverSpec(approach=approach, precision="fp32")) as fp32_session:
            fp32_solution = fp32_session.solve(W)
        fp32_res = _true_residual(ref_solver, fp32_solution.lam)

    assert fp32_res > 100.0 * max(fp64_res, 1e-16)
