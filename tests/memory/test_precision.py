"""Tests of the precision policies and factor demotion primitives."""

from __future__ import annotations

import numpy as np
import pytest

from repro.memory.precision import (
    PRECISION_NAMES,
    PRECISIONS,
    PrecisionPolicy,
    demote_array,
    demote_factor,
    factor_nbytes,
    resolve_precision,
)
from repro.sparse import CholmodLikeSolver

from tests.conftest import random_spd_matrix


@pytest.fixture(scope="module")
def spd():
    rng = np.random.default_rng(23)
    return random_spd_matrix(60, 0.08, rng)


def test_registry_exposes_the_three_policies():
    assert PRECISION_NAMES == ("fp64", "fp32", "fp32_ir")
    assert not PRECISIONS["fp64"].demotes
    assert PRECISIONS["fp32"].demotes and not PRECISIONS["fp32"].refine
    ir = PRECISIONS["fp32_ir"]
    assert ir.demotes and ir.refine
    assert ir.refine_steps > 0 and ir.dual_refine_rounds > 0
    assert ir.storage_dtype == np.dtype(np.float32)


def test_resolve_precision_names_policies_and_none():
    assert resolve_precision(None) is PRECISIONS["fp64"]
    assert resolve_precision("fp32_ir") is PRECISIONS["fp32_ir"]
    policy = PrecisionPolicy(name="custom", storage_dtype=np.dtype(np.float32))
    assert resolve_precision(policy) is policy
    with pytest.raises(ValueError, match="known policies"):
        resolve_precision("fp16")


def test_demote_array_is_a_noop_at_matching_dtype():
    a = np.arange(8, dtype=np.float32)
    assert demote_array(a, np.dtype(np.float32)) is a
    demoted = demote_array(np.arange(8, dtype=np.float64), np.dtype(np.float32))
    assert demoted.dtype == np.float32
    assert demoted.flags.c_contiguous


def test_demote_factor_converts_values_and_panels(spd):
    solver = CholmodLikeSolver()
    solver.factorize(spd)
    factor = solver.extract_factor()
    fp64_bytes = factor_nbytes(factor)
    assert factor.values.dtype == np.float64

    demote_factor(factor, np.dtype(np.float32))
    assert factor.values.dtype == np.float32
    panels = factor.panel_values()
    assert panels is not None and panels.dtype == np.float32
    # Values and panel storage both halve.
    assert factor_nbytes(factor) * 2 == fp64_bytes


def test_demote_factor_noops_for_fp64_and_none(spd):
    solver = CholmodLikeSolver()
    solver.factorize(spd)
    factor = solver.extract_factor()
    values = factor.values
    assert demote_factor(factor, np.dtype(np.float64)) is factor
    assert factor.values is values  # untouched
    assert demote_factor(None, np.dtype(np.float32)) is None
    assert factor_nbytes(None) == 0


@pytest.mark.parametrize("precision", ["fp32", "fp32_ir"])
def test_solver_stores_fp32_factors_under_demoting_policies(spd, precision):
    solver = CholmodLikeSolver(precision=precision)
    solver.factorize(spd)
    factor = solver.extract_factor()
    assert factor.values.dtype == np.float32
    reference = CholmodLikeSolver()
    reference.factorize(spd)
    # fp32 storage halves the factor; fp32_ir additionally retains the fp64
    # matrix for refinement, so its resident bytes do not halve.
    if precision == "fp32":
        assert solver.storage_nbytes() * 2 == reference.storage_nbytes()
    else:
        assert solver.storage_nbytes() > reference.storage_nbytes() // 2


def test_refinement_recovers_fp64_accuracy_from_fp32_factors(spd):
    rng = np.random.default_rng(3)
    b = rng.standard_normal(spd.shape[0])

    fp32 = CholmodLikeSolver(precision="fp32")
    fp32.factorize(spd)
    ir = CholmodLikeSolver(precision="fp32_ir")
    ir.factorize(spd)

    norm_b = np.linalg.norm(b)
    res_fp32 = np.linalg.norm(spd @ fp32.solve(b) - b) / norm_b
    res_ir = np.linalg.norm(spd @ ir.solve(b) - b) / norm_b
    assert res_fp32 > 1e-9  # rounded factors alone stall at fp32 level
    assert res_ir < 1e-12  # refinement recovers double-precision residuals
    # The override used by the PCPG operator applies skips refinement.
    res_raw = np.linalg.norm(spd @ ir.solve(b, refine=False) - b) / norm_b
    assert res_raw == pytest.approx(res_fp32, rel=1.0)
    assert res_raw > 1e-9


def test_demote_storage_halves_resident_factor_bytes(spd):
    solver = CholmodLikeSolver()
    solver.factorize(spd)
    before = solver.storage_nbytes()
    solver.demote_storage()
    assert solver.storage_nbytes() * 2 == before
    solver.demote_storage()  # idempotent
    assert solver.storage_nbytes() * 2 == before
