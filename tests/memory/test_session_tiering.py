"""Tests of the session's budget-aware factor tiering.

The contract under test: a memory ceiling changes *where bytes live*, never
*what solves return*.  Demotion marks an entry stale so its next solve
re-factorizes in the spec's own precision; eviction drops the solver so the
next touch rebuilds it from the session caches.  Either way the results are
bitwise identical to an unconstrained session.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.api import Session, SolverSpec, Workload
from repro.memory.ledger import measure_solver

SPEC = SolverSpec(approach="expl mkl")
WORKLOADS = [
    Workload("heat", 2, (2, 1), 3),
    Workload("heat", 2, (2, 2), 3),
    Workload("heat", 2, (3, 1), 3),
]


def _entry_total(workload: Workload, spec: SolverSpec = SPEC) -> int:
    with Session(spec, memory_budget="unlimited") as session:
        session.solve(workload)
        return measure_solver(session.solver(workload)).total


def _reference_solutions(spec: SolverSpec = SPEC):
    with Session(spec, memory_budget="unlimited") as session:
        return {w: session.solve(w) for w in WORKLOADS}


def _assert_bitwise_equal(a, b) -> None:
    assert np.array_equal(a.lam, b.lam)
    for ua, ub in zip(a.primal, b.primal):
        assert np.array_equal(ua, ub)


def test_unconstrained_session_never_tiers(monkeypatch):
    monkeypatch.delenv("REPRO_MEMORY_BUDGET", raising=False)
    with Session(SPEC) as session:
        for w in WORKLOADS:
            session.solve(w)
        stats = session.cache_stats()
    assert session.memory_budget_bytes is None
    assert stats["memory_budget_bytes"] is None
    assert stats["demotions"] == 0
    assert stats["evictions"] == 0
    assert stats["refactorizations"] == 0
    assert stats["resident_bytes"] > 0
    assert stats["resident_entries"] == len(WORKLOADS)


def test_tier_counters_zero_before_any_solve():
    with Session(SPEC) as session:
        stats = session.cache_stats()
    assert stats["resident_bytes"] == 0
    assert stats["peak_resident_bytes"] == 0
    assert stats["resident_entries"] == 0
    assert stats["demoted_entries"] == 0


def test_budget_pressure_demotes_then_solves_identically():
    reference = _reference_solutions()
    budget = int(1.2 * max(_entry_total(w) for w in WORKLOADS))
    with Session(SPEC, memory_budget=budget) as session:
        first = {w: session.solve(w) for w in WORKLOADS}
        stats_mid = session.cache_stats()
        # Cold entries were demoted (or evicted once demoted) to fit.
        assert stats_mid["demotions"] >= 1
        # Re-solving every workload re-factorizes the affected entries
        # lazily and still returns bitwise-identical fp64 solutions.
        second = {w: session.solve(w) for w in WORKLOADS}
        stats = session.cache_stats()
    assert session.memory_budget_bytes == budget
    assert stats["refactorizations"] >= 1
    for w in WORKLOADS:
        _assert_bitwise_equal(first[w], reference[w])
        _assert_bitwise_equal(second[w], reference[w])


def test_starvation_budget_evicts_and_rebuilds_lazily():
    reference = _reference_solutions()
    budget = int(0.9 * min(_entry_total(w) for w in WORKLOADS))
    with Session(SPEC, memory_budget=budget) as session:
        for w in WORKLOADS:
            _assert_bitwise_equal(session.solve(w), reference[w])
        stats_mid = session.cache_stats()
        assert stats_mid["evictions"] >= 1
        # Only the most recent entry can be resident under this budget.
        assert stats_mid["resident_entries"] <= 2
        # A full second pass rebuilds each evicted solver from the session
        # caches: same results, counted as lazy re-factorizations.
        for w in WORKLOADS:
            _assert_bitwise_equal(session.solve(w), reference[w])
        stats = session.cache_stats()
    assert stats["refactorizations"] >= 2
    assert stats["evictions"] > stats_mid["evictions"] - 1


def test_fp32_entries_skip_demotion_and_go_straight_to_eviction():
    spec = SolverSpec(approach="expl mkl", precision="fp32")
    budget = int(0.9 * min(_entry_total(w, spec) for w in WORKLOADS[:2]))
    with Session(spec, memory_budget=budget) as session:
        session.solve(WORKLOADS[0])
        session.solve(WORKLOADS[1])
        stats = session.cache_stats()
    assert stats["demotions"] == 0  # already half-size: nothing to demote
    assert stats["evictions"] >= 1


def test_budget_from_environment_and_explicit_override(monkeypatch):
    monkeypatch.setenv("REPRO_MEMORY_BUDGET", "64M")
    with Session(SPEC) as from_env:
        assert from_env.memory_budget_bytes == 64 * 1024**2
    with Session(SPEC, memory_budget="unlimited") as unlimited:
        assert unlimited.memory_budget_bytes is None
    with Session(SPEC, memory_budget="128K") as explicit:
        assert explicit.memory_budget_bytes == 128 * 1024
    monkeypatch.delenv("REPRO_MEMORY_BUDGET")
    with Session(SPEC) as plain:
        assert plain.memory_budget_bytes is None


def test_hammer_concurrent_solves_under_budget_stay_bitwise_identical():
    """Satellite: many threads against one budget-constrained session.

    Every thread mixes single solves and (per-column) block solves across
    all workloads while the tier demotes and evicts under their feet; the
    returned fp64 solutions must be bitwise identical to an unconstrained
    session's, and the counters must stay consistent.
    """
    reference = _reference_solutions()
    budget = int(1.2 * max(_entry_total(w) for w in WORKLOADS))
    errors: list[BaseException] = []

    with Session(SPEC, memory_budget=budget) as session:

        def worker(seed: int) -> None:
            try:
                for round_ in range(2):
                    for w in WORKLOADS:
                        if (seed + round_) % 2:
                            solutions = session.solve_many(
                                w, [None, None], stacked=False
                            )
                        else:
                            solutions = [session.solve(w)]
                        for solution in solutions:
                            _assert_bitwise_equal(solution, reference[w])
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120.0)
        stats = session.cache_stats()

    assert not errors, errors
    # Counter consistency: every lazy re-factorization consumed exactly one
    # earlier demotion or eviction, and the ledger tracks live solvers only.
    assert stats["refactorizations"] <= stats["demotions"] + stats["evictions"]
    assert stats["resident_entries"] == stats["solvers"]
    assert 0 < stats["resident_bytes"] <= stats["peak_resident_bytes"]
