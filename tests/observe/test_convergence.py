"""Solver telemetry: residual history opt-in, ConvergenceReport, span tree."""

import json

import numpy as np
import pytest

from repro.api import Session, SolverSpec, Workload
from repro.observe.convergence import ConvergenceReport
from repro.observe.trace import trace

WORKLOAD = Workload("heat", 2, (2, 2), 4)


def test_history_off_by_default():
    with Session() as session:
        solution = session.solve(WORKLOAD)
    assert solution.pcpg.residual_history == []
    assert solution.residual_history == []
    report = solution.convergence
    assert report is not None
    assert report.residual_history == ()
    assert not report.history_truncated


def test_residual_history_opt_in():
    with Session(SolverSpec(residual_history=200)) as session:
        solution = session.solve(WORKLOAD)
    history = solution.residual_history
    assert len(history) == len(solution.pcpg.residual_norms)
    assert history[0] > history[-1]
    assert solution.pcpg.converged


def test_residual_history_cap_truncates():
    with Session(SolverSpec(residual_history=3)) as session:
        solution = session.solve(WORKLOAD)
    assert len(solution.residual_history) == 3
    report = solution.convergence
    assert report.history_truncated
    assert report.iterations > 2


def test_convergence_report_contents():
    spec = SolverSpec(residual_history=100)
    with Session(spec) as session:
        solution = session.solve(WORKLOAD)
    report = solution.convergence
    assert report.converged is True
    assert report.iterations == solution.pcpg.iterations
    assert report.tolerance == spec.tolerance
    assert report.initial_norm == solution.pcpg.residual_norms[0]
    assert report.final_norm == solution.pcpg.residual_norms[-1]
    assert report.relative_residual == pytest.approx(
        report.final_norm / report.initial_norm
    )
    assert report.columns == 1
    json.dumps(report.to_dict())


def test_report_describe_lists_history():
    with Session(SolverSpec(residual_history=50)) as session:
        solution = session.solve(WORKLOAD)
    text = solution.convergence.describe()
    assert "converged" in text
    assert "residual history" in text
    assert "iter   0" in text


def test_defect_rounds_surface_for_fp32_ir():
    with Session(SolverSpec(precision="fp32_ir", residual_history=100)) as session:
        solution = session.solve(WORKLOAD)
    assert solution.pcpg.defect_rounds == solution.convergence.defect_rounds
    assert solution.convergence.defect_rounds >= 0


def test_block_solve_reports_per_column():
    rng = np.random.default_rng(7)
    with Session(SolverSpec(residual_history=100)) as session:
        problem = session.problem(WORKLOAD)
        columns = [
            [rng.standard_normal(sub.ndofs) for sub in problem.subdomains]
            for _ in range(3)
        ]
        solutions = session.solve_many(WORKLOAD, columns)
    assert len(solutions) == 3
    for solution in solutions:
        report = solution.convergence
        assert report is not None
        assert report.columns == 3
        assert len(solution.residual_history) > 0


def test_traced_solve_span_tree_covers_phases():
    """The acceptance-criteria tree: preprocessing -> factorization ->
    coarse setup -> PCPG with per-iteration residual events."""
    with trace() as tracer:
        with Session(SolverSpec(residual_history=50)) as session:
            solution = session.solve(WORKLOAD)
    tree = tracer.to_tree()
    assert [node["name"] for node in tree] == ["session.solve"]
    root = tree[0]
    child_names = [c["name"] for c in root["children"]]
    for expected in ("preparation", "preprocessing", "coarse_setup", "pcpg"):
        assert expected in child_names, f"missing {expected} in {child_names}"
    preprocessing = next(c for c in root["children"] if c["name"] == "preprocessing")
    assert any(g["name"] == "factorize" for g in preprocessing["children"])
    pcpg = next(c for c in root["children"] if c["name"] == "pcpg")
    iterations = [c for c in pcpg["children"] if c["name"] == "iteration"]
    assert len(iterations) == solution.pcpg.iterations
    # each iteration carries its residual instant event
    for node in iterations:
        events = [e["name"] for e in node["events"]]
        assert "residual" in events
    norms = [
        node["events"][0]["attrs"]["norm"]
        for node in iterations
        if node["events"]
    ]
    assert norms == solution.pcpg.residual_norms[1 : len(norms) + 1]
    # the tree loads as a Chrome trace too
    doc = tracer.to_chrome()
    assert doc["traceEvents"], "chrome export must not be empty"
    json.dumps(doc)
