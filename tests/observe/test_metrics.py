"""The metrics registry: counters, gauges, histograms, rendering, threads."""

import re
import threading

import pytest

from repro.observe.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
)

_HELP = re.compile(r"^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .+$")
_TYPE = re.compile(r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$")
_SAMPLE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? \S+$")


def _assert_valid_exposition(text: str) -> None:
    assert text.endswith("\n")
    for line in text.splitlines():
        assert (
            _HELP.match(line) or _TYPE.match(line) or _SAMPLE.match(line)
        ), f"invalid exposition line: {line!r}"


def test_counter_inc_and_value():
    registry = MetricsRegistry()
    c = registry.counter("repro_test_ops_total", "Operations")
    assert c.value() == 0.0
    c.inc()
    c.inc(2.5)
    assert c.value() == 3.5


def test_counter_rejects_negative():
    registry = MetricsRegistry()
    c = registry.counter("repro_test_neg_total", "x")
    with pytest.raises(ValueError):
        c.inc(-1)


def test_counter_labels_are_independent_series():
    registry = MetricsRegistry()
    c = registry.counter("repro_test_labeled_total", "x")
    c.inc(status="200")
    c.inc(status="200")
    c.inc(status="500")
    assert c.value(status="200") == 2.0
    assert c.value(status="500") == 1.0
    assert c.total() == 3.0


def test_gauge_set_inc_dec():
    registry = MetricsRegistry()
    g = registry.gauge("repro_test_level", "x")
    g.set(5.0)
    g.inc(2.0)
    g.dec(3.0)
    assert g.value() == 4.0


def test_histogram_buckets_cumulative():
    registry = MetricsRegistry()
    h = registry.histogram("repro_test_latency_seconds", "x", buckets=(0.1, 1.0))
    h.observe(0.05)
    h.observe(0.5)
    h.observe(5.0)
    rendered = registry.render_prometheus()
    assert 'repro_test_latency_seconds_bucket{le="0.1"} 1' in rendered
    assert 'repro_test_latency_seconds_bucket{le="1"} 2' in rendered
    assert 'repro_test_latency_seconds_bucket{le="+Inf"} 3' in rendered
    assert "repro_test_latency_seconds_count 3" in rendered
    assert "repro_test_latency_seconds_sum 5.55" in rendered


def test_registry_rejects_invalid_names_and_kind_clashes():
    registry = MetricsRegistry()
    with pytest.raises(ValueError):
        registry.counter("bad name", "x")
    registry.counter("repro_test_clash", "x")
    with pytest.raises(ValueError):
        registry.gauge("repro_test_clash", "x")


def test_same_name_same_kind_returns_same_metric():
    registry = MetricsRegistry()
    a = registry.counter("repro_test_idem_total", "x")
    b = registry.counter("repro_test_idem_total", "ignored second help")
    assert a is b


def test_render_prometheus_is_valid_exposition():
    registry = MetricsRegistry()
    registry.counter("repro_a_total", "Counts a").inc(3)
    registry.gauge("repro_b", "Gauge b").set(1.5)
    registry.counter("repro_c_total", "Labeled").inc(1, route="/v1/solve", code="200")
    registry.histogram("repro_d_seconds", "Hist", buckets=DEFAULT_BUCKETS).observe(0.2)
    text = registry.render_prometheus()
    _assert_valid_exposition(text)
    assert "# HELP repro_a_total Counts a" in text
    assert "# TYPE repro_a_total counter" in text
    assert 'repro_c_total{code="200",route="/v1/solve"} 1' in text


def test_render_skips_metrics_without_samples():
    registry = MetricsRegistry()
    registry.counter("repro_never_touched_total", "x")
    assert "repro_never_touched_total" not in registry.render_prometheus()


def test_snapshot():
    registry = MetricsRegistry()
    registry.counter("repro_snap_total", "x").inc(2)
    registry.gauge("repro_snap_gauge", "x").set(7)
    snap = registry.snapshot()
    assert snap["repro_snap_total"] == 2.0
    assert snap["repro_snap_gauge"] == 7.0


def test_four_thread_hammer_loses_no_increments():
    registry = MetricsRegistry()
    counter = registry.counter("repro_hammer_total", "x")
    gauge = registry.gauge("repro_hammer_gauge", "x")
    histogram = registry.histogram("repro_hammer_seconds", "x", buckets=(0.5,))
    n_threads, per_thread = 4, 5000
    barrier = threading.Barrier(n_threads)

    def hammer(worker: int) -> None:
        barrier.wait()
        for i in range(per_thread):
            counter.inc()
            counter.inc(1, worker=str(worker))
            gauge.inc()
            histogram.observe(0.1 if i % 2 else 0.9)

    threads = [threading.Thread(target=hammer, args=(w,)) for w in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    expected = n_threads * per_thread
    assert counter.value() == expected
    for w in range(n_threads):
        assert counter.value(worker=str(w)) == per_thread
    assert gauge.value() == expected
    rendered = registry.render_prometheus()
    assert f"repro_hammer_seconds_count {expected}" in rendered
    _assert_valid_exposition(rendered)
