"""Structured logging: formatters, configuration, caplog interop."""

import io
import json
import logging

from repro.observe.log import (
    JsonFormatter,
    KeyValueFormatter,
    configure_logging,
    get_logger,
)


def _reset_repro_logger():
    logger = logging.getLogger("repro")
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    logger.setLevel(logging.NOTSET)
    logger.propagate = True


def test_get_logger_prefixes_names():
    assert get_logger("serve.access").name == "repro.serve.access"
    assert get_logger("repro.bench").name == "repro.bench"


def test_unconfigured_logs_propagate_to_caplog(caplog):
    with caplog.at_level(logging.INFO, logger="repro.test"):
        get_logger("repro.test").info("something_happened", count=3)
    assert len(caplog.records) == 1
    record = caplog.records[0]
    assert record.repro_event == "something_happened"
    assert record.repro_fields == {"count": 3}


def test_key_value_formatter():
    stream = io.StringIO()
    try:
        configure_logging(level="debug", stream=stream)
        get_logger("repro.test").info(
            "request", request_id="abc", status=200, latency_ms=1.5, note="two words"
        )
        line = stream.getvalue().strip()
    finally:
        _reset_repro_logger()
    assert " info " in line
    assert "repro.test" in line
    assert "request" in line
    assert "request_id=abc" in line
    assert "status=200" in line
    assert "latency_ms=1.5" in line
    assert 'note="two words"' in line


def test_json_formatter_one_object_per_line():
    stream = io.StringIO()
    try:
        configure_logging(level="info", json_mode=True, stream=stream)
        logger = get_logger("repro.test")
        logger.info("first", a=1)
        logger.warning("second", b="x")
        lines = stream.getvalue().strip().splitlines()
    finally:
        _reset_repro_logger()
    docs = [json.loads(line) for line in lines]
    assert [d["event"] for d in docs] == ["first", "second"]
    assert docs[0]["a"] == 1
    assert docs[1]["b"] == "x"
    assert docs[1]["level"] == "warning"
    assert docs[0]["logger"] == "repro.test"
    assert "ts" in docs[0]


def test_level_threshold_filters():
    stream = io.StringIO()
    try:
        configure_logging(level="warning", stream=stream)
        logger = get_logger("repro.test")
        logger.info("hidden")
        logger.warning("shown")
        output = stream.getvalue()
    finally:
        _reset_repro_logger()
    assert "hidden" not in output
    assert "shown" in output


def test_formatters_are_importable_and_standalone():
    record = logging.LogRecord(
        name="repro.x", level=logging.INFO, pathname=__file__, lineno=1,
        msg="event_name", args=(), exc_info=None,
    )
    record.repro_event = "event_name"
    record.repro_fields = {"k": 1}
    assert "event_name" in KeyValueFormatter().format(record)
    doc = json.loads(JsonFormatter().format(record))
    assert doc["event"] == "event_name"
