"""Trace-context propagation through the runtime executors.

The worker spans of both backends must attribute to the submitting span:
threads re-install the captured ContextVar state, processes run the task
under a worker-local tracer whose spans are shipped back and adopted under
the submitting span's id.
"""

import os

import pytest

from repro.api import Session, SolverSpec, Workload
from repro.observe.trace import capture_context, trace, trace_span
from repro.runtime.executor import ExecutionSpec, ThreadExecutor, make_executor


def test_thread_executor_workers_attribute_to_parent():
    executor = ThreadExecutor(ExecutionSpec("threads", 2))
    try:
        with trace() as tracer:
            with trace_span("submitting"):

                def work(i: int) -> int:
                    with trace_span("worker", i=i):
                        return i * 2

                futures = [executor.submit(work, i) for i in range(4)]
                assert sorted(f.result() for f in futures) == [0, 2, 4, 6]
    finally:
        executor.close()
    submitting = tracer.find("submitting")[0]
    workers = tracer.find("worker")
    assert len(workers) == 4
    assert {s.parent_id for s in workers} == {submitting.span_id}


def test_thread_executor_without_trace_still_works():
    executor = ThreadExecutor(ExecutionSpec("threads", 2))
    try:
        assert capture_context() is None
        assert executor.submit(lambda: 41 + 1).result() == 42
    finally:
        executor.close()


def _traced_task(value: int) -> int:
    with trace_span("process_worker", value=value):
        return value + 10


def test_process_executor_ships_spans_back():
    executor = make_executor(ExecutionSpec("processes", 2))
    try:
        with trace() as tracer:
            with trace_span("parent"):
                futures = [executor.submit(_traced_task, i) for i in range(3)]
                assert sorted(f.result() for f in futures) == [10, 11, 12]
    finally:
        executor.close()
    parent = tracer.find("parent")[0]
    workers = tracer.find("process_worker")
    assert len(workers) == 3
    assert {s.parent_id for s in workers} == {parent.span_id}
    # worker spans come from other processes
    assert any(s.pid != os.getpid() for s in workers)


def test_process_executor_exception_passthrough():
    executor = make_executor(ExecutionSpec("processes", 2))
    try:
        with trace():
            future = executor.submit(_exploding_task)
            with pytest.raises(RuntimeError, match="intentional"):
                future.result()
    finally:
        executor.close()


def _exploding_task() -> None:
    raise RuntimeError("intentional")


def test_traced_session_solve_with_process_backend():
    """End to end: a traced solve on the process backend attributes the
    worker-side factorization spans into the session's span tree."""
    spec = SolverSpec(execution=ExecutionSpec("processes", 2))
    workload = Workload("heat", 2, (2, 2), 4)
    with trace() as tracer:
        with Session(spec) as session:
            solution = session.solve(workload)
    assert solution.pcpg.converged
    factorize = tracer.find("factorize")
    assert factorize, "expected factorize spans from the process workers"
    assert any(s.attrs.get("backend") == "processes" for s in factorize)
    # the whole tree hangs off session.solve — no orphaned worker spans
    tree = tracer.to_tree()
    roots = [node["name"] for node in tree]
    assert roots == ["session.solve"]
