"""The span tracer: recording, nesting, export formats and the disabled path."""

import json

import pytest

from repro.observe.trace import (
    Tracer,
    capture_context,
    current_tracer,
    trace,
    trace_event,
    trace_span,
    tracing_active,
)


def test_disabled_tracer_records_nothing():
    assert not tracing_active()
    span = trace_span("never", anything=1)
    with span as inner:
        assert inner is None
        trace_event("also-never", x=2)
    assert current_tracer() is None
    assert capture_context() is None


def test_disabled_span_context_is_reentrant_singleton():
    a = trace_span("a")
    b = trace_span("b")
    assert a is b  # the stateless no-op singleton
    with a:
        with b:
            pass


def test_trace_records_spans_and_restores_state():
    with trace("unit") as tracer:
        assert tracing_active()
        with trace_span("outer", layer="api"):
            with trace_span("inner", k=1):
                trace_event("tick", n=3)
    assert not tracing_active()
    assert len(tracer) == 2
    names = {s.name for s in tracer.spans}
    assert names == {"outer", "inner"}


def test_span_nesting_parents():
    with trace() as tracer:
        with trace_span("root"):
            with trace_span("child"):
                with trace_span("grandchild"):
                    pass
            with trace_span("sibling"):
                pass
    by_name = {s.name: s for s in tracer.spans}
    assert by_name["root"].parent_id is None
    assert by_name["child"].parent_id == by_name["root"].span_id
    assert by_name["sibling"].parent_id == by_name["root"].span_id
    assert by_name["grandchild"].parent_id == by_name["child"].span_id


def test_span_attrs_and_durations():
    with trace() as tracer:
        with trace_span("work", subdomain=4, mode="dense"):
            pass
    (span,) = tracer.spans
    assert span.attrs == {"subdomain": 4, "mode": "dense"}
    assert span.duration_us >= 0.0
    assert span.start_us > 0.0


def test_tree_round_trip():
    with trace() as tracer:
        with trace_span("solve"):
            with trace_span("factorize", subdomain=0):
                pass
            with trace_span("pcpg"):
                trace_event("residual", iteration=1, norm=0.5)
    tree = tracer.to_tree()
    assert len(tree) == 1
    root = tree[0]
    assert root["name"] == "solve"
    children = [c["name"] for c in root["children"]]
    assert children == ["factorize", "pcpg"]
    pcpg = root["children"][1]
    assert pcpg["events"][0]["name"] == "residual"
    assert pcpg["events"][0]["attrs"] == {"iteration": 1, "norm": 0.5}
    # the tree must be JSON-serializable as-is
    json.dumps(tree)


def test_chrome_export_fields():
    with trace() as tracer:
        with trace_span("outer"):
            with trace_span("inner", k=2):
                trace_event("mark", v=1)
    doc = tracer.to_chrome()
    assert doc["displayTimeUnit"] == "ms"
    events = doc["traceEvents"]
    complete = [e for e in events if e["ph"] == "X"]
    instants = [e for e in events if e["ph"] == "i"]
    assert {e["name"] for e in complete} == {"outer", "inner"}
    for event in complete:
        assert isinstance(event["ts"], float)
        assert isinstance(event["dur"], float)
        assert isinstance(event["pid"], int)
        assert isinstance(event["tid"], int)
    inner = next(e for e in complete if e["name"] == "inner")
    assert inner["args"] == {"k": 2}
    (mark,) = instants
    assert mark["s"] == "t"
    # events are sorted by timestamp for direct chrome://tracing loading
    stamps = [e["ts"] for e in events]
    assert stamps == sorted(stamps)
    json.dumps(doc)


def test_write_chrome(tmp_path):
    with trace() as tracer:
        with trace_span("io"):
            pass
    path = tmp_path / "trace.json"
    tracer.write_chrome(path)
    doc = json.loads(path.read_text())
    assert doc["traceEvents"][0]["name"] == "io"


def test_find_and_len():
    with trace() as tracer:
        for _ in range(3):
            with trace_span("repeat"):
                pass
        with trace_span("other"):
            pass
    assert len(tracer) == 4
    assert len(tracer.find("repeat")) == 3
    assert tracer.find("missing") == []


def test_adopt_remaps_ids_under_parent():
    with trace() as tracer:
        with trace_span("parent"):
            parent_id = capture_context()[1]
    worker = Tracer()
    # simulate a worker-local trace: ids collide with the parent tracer's
    a_id = worker.next_id()
    b_id = worker.next_id()
    from repro.observe.trace import Span

    a = Span(name="w-root", span_id=a_id, parent_id=None, start_us=1.0, duration_us=1.0)
    b = Span(name="w-child", span_id=b_id, parent_id=a_id, start_us=1.5, duration_us=0.5)
    tracer.adopt([a, b], [], parent_id)
    by_name = {s.name: s for s in tracer.spans}
    assert by_name["w-root"].parent_id == parent_id
    assert by_name["w-child"].parent_id == by_name["w-root"].span_id
    assert by_name["w-root"].span_id != a_id or by_name["w-child"].span_id != b_id


def test_exception_still_records_span():
    with trace() as tracer:
        with pytest.raises(RuntimeError):
            with trace_span("exploding"):
                raise RuntimeError("boom")
    assert len(tracer.find("exploding")) == 1
    assert not tracing_active()


def test_nested_trace_contexts_are_independent():
    with trace("outer-trace") as outer:
        with trace_span("before"):
            pass
        with trace("inner-trace") as inner:
            with trace_span("inner-only"):
                pass
        with trace_span("after"):
            pass
    assert {s.name for s in outer.spans} == {"before", "after"}
    assert {s.name for s in inner.spans} == {"inner-only"}
