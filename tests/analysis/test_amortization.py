"""Tests of the amortization / speedup analytics (Figures 6 and 7)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.amortization import (
    ApproachTiming,
    amortization_point,
    best_approach_curve,
    speedup_curve,
    total_time,
)


IMPLICIT = ApproachTiming("impl mkl", preprocessing_seconds=1.0, application_seconds=1.0)
EXPLICIT = ApproachTiming("expl gpu", preprocessing_seconds=10.0, application_seconds=0.1)
SLOW = ApproachTiming("expl cholmod", preprocessing_seconds=50.0, application_seconds=0.5)


def test_total_time_linear_in_iterations():
    iters = np.array([1, 10, 100])
    assert np.allclose(total_time(IMPLICIT, iters), 1.0 + iters)
    assert np.allclose(EXPLICIT.total(iters), 10.0 + 0.1 * iters)


def test_amortization_point_basic():
    # explicit becomes cheaper when 1 + k > 10 + 0.1 k  ->  k > 10
    k = amortization_point(EXPLICIT, IMPLICIT)
    assert k == 10
    assert EXPLICIT.total(k + 1) < IMPLICIT.total(k + 1)
    assert EXPLICIT.total(k - 1) > IMPLICIT.total(k - 1)


def test_amortization_point_never_or_immediately():
    never = ApproachTiming("bad", preprocessing_seconds=10.0, application_seconds=2.0)
    assert amortization_point(never, IMPLICIT) is None
    always = ApproachTiming("free", preprocessing_seconds=0.5, application_seconds=0.5)
    assert amortization_point(always, IMPLICIT) == 0
    # cap on the search range
    far = ApproachTiming("far", preprocessing_seconds=1e9, application_seconds=0.9999)
    assert amortization_point(far, IMPLICIT, max_iterations=100) is None


def test_best_approach_curve_switches_at_crossover():
    iters = np.array([1, 5, 10, 20, 100, 1000])
    curve = best_approach_curve([IMPLICIT, EXPLICIT, SLOW], iters, baseline="impl mkl")
    assert curve.best_names[0] == "impl mkl"
    assert curve.best_names[-1] == "expl gpu"
    # the best curve is the pointwise minimum
    stack = np.stack([t.total(iters) for t in (IMPLICIT, EXPLICIT, SLOW)])
    assert np.allclose(curve.best_times, stack.min(axis=0))
    # speedup grows with the iteration count and approaches the apply ratio
    assert np.all(np.diff(curve.speedups) >= -1e-12)
    assert curve.speedups[-1] == pytest.approx(1.0 / 0.1, rel=0.1)


def test_speedup_curve_shortcut_and_missing_baseline():
    iters = np.array([1, 100])
    speedups = speedup_curve([IMPLICIT, EXPLICIT], iters)
    assert speedups.shape == (2,)
    with pytest.raises(ValueError):
        best_approach_curve([EXPLICIT], iters, baseline="impl mkl")
