"""Tests of the sweep engine and the plain-text reporting."""

from __future__ import annotations

import pytest

from repro.analysis.reporting import format_series, format_table
from repro.analysis.sweep import sweep_configurations


def test_sweep_runs_full_grid_and_merges_records():
    result = sweep_configurations(
        {"a": [1, 2], "b": ["x", "y"]},
        measure=lambda a, b: {"value": a * 10 + (1 if b == "y" else 0)},
    )
    assert len(result.records) == 4
    assert result.parameters == ["a", "b"]
    assert result.filter(a=2, b="y")[0]["value"] == 21
    assert result.column("value") == [10, 11, 20, 21]


def test_sweep_skip_predicate():
    result = sweep_configurations(
        {"a": [1, 2, 3]},
        measure=lambda a: {"sq": a * a},
        skip=lambda a: a == 2,
    )
    assert [r["a"] for r in result.records] == [1, 3]


def test_sweep_cartesian_grid_ordering():
    """Points are emitted in cartesian order with the last axis fastest."""
    result = sweep_configurations(
        {"a": [1, 2], "b": ["x", "y"], "c": [True, False]},
        measure=lambda a, b, c: {},
    )
    assert [(r["a"], r["b"], r["c"]) for r in result.records] == [
        (1, "x", True),
        (1, "x", False),
        (1, "y", True),
        (1, "y", False),
        (2, "x", True),
        (2, "x", False),
        (2, "y", True),
        (2, "y", False),
    ]


def test_sweep_filter_and_column_edge_cases():
    result = sweep_configurations(
        {"a": [1, 2]}, measure=lambda a: {"value": a * 2}
    )
    # filter on an unknown value or key matches nothing (no KeyError)
    assert result.filter(a=99) == []
    assert result.filter(nonexistent=1) == []
    # multiple criteria are ANDed
    assert result.filter(a=2, value=4) == [{"a": 2, "value": 4}]
    # column is strict: every record must carry the requested key
    assert result.column("a") == [1, 2]
    with pytest.raises(KeyError):
        result.column("missing")


def test_sweep_series_extraction_sorted():
    result = sweep_configurations(
        {"n": [4, 2, 8], "mode": ["m"]},
        measure=lambda n, mode: {"t": float(n) ** 2},
    )
    series = result.series("n", "t", mode="m")
    assert series == [(2, 4.0), (4, 16.0), (8, 64.0)]


def test_format_table_alignment_and_title():
    text = format_table(
        ["name", "value"], [["syrk", 1.5], ["trsm", 20]], title="Table X"
    )
    lines = text.splitlines()
    assert lines[0] == "Table X"
    assert "name" in lines[1] and "value" in lines[1]
    assert len(lines) == 5
    assert all(len(line) == len(lines[1]) for line in lines[2:])


def test_format_series_output():
    text = format_series(
        {"legacy": [(256, 1.5), (512, 3.0)]},
        x_label="dofs",
        y_label="ms",
        title="Fig 3",
    )
    assert "Fig 3" in text
    assert "[legacy]" in text
    assert "256" in text and "512" in text
