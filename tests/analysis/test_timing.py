"""Tests of the timing ledger and the virtual thread clocks."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.timing import PhaseTiming, ThreadClocks, TimingLedger


def test_thread_clocks_round_robin_and_elapsed():
    clocks = ThreadClocks(2)
    assert clocks.thread_of(0) == 0
    assert clocks.thread_of(3) == 1
    clocks.advance(0, 1.0)
    clocks.advance(1, 3.0)
    clocks.advance(2, 2.0)  # thread 0 again
    assert clocks.now(0) == pytest.approx(3.0)
    assert clocks.now(1) == pytest.approx(3.0)
    assert clocks.elapsed == pytest.approx(3.0)
    assert clocks.max_time == pytest.approx(3.0)


def test_thread_clocks_origin_and_set_at_least():
    clocks = ThreadClocks(1, origin=10.0)
    clocks.set_at_least(0, 12.0)
    assert clocks.elapsed == pytest.approx(2.0)
    clocks.set_at_least(0, 5.0)  # cannot go backwards
    assert clocks.now(0) == pytest.approx(12.0)
    with pytest.raises(ValueError):
        clocks.advance(0, -1.0)
    with pytest.raises(ValueError):
        ThreadClocks(0)


@settings(max_examples=30, deadline=None)
@given(
    n_threads=st.integers(min_value=1, max_value=8),
    durations=st.lists(st.floats(min_value=0.0, max_value=5.0), min_size=1, max_size=40),
)
def test_property_parallel_loop_bounds(n_threads, durations):
    """Property: max/n_threads ≤ elapsed ≤ serial sum, and ≥ longest item."""
    clocks = ThreadClocks(n_threads)
    for i, duration in enumerate(durations):
        clocks.advance(i, duration)
    total = sum(durations)
    assert clocks.elapsed <= total + 1e-9
    assert clocks.elapsed >= total / n_threads - 1e-9
    assert clocks.elapsed >= max(durations) - 1e-9


def test_phase_timing_breakdown_accumulation():
    phase = PhaseTiming(name="apply", simulated_seconds=1.0)
    phase.add("gemv", 0.25)
    phase.add("gemv", 0.25)
    phase.add("transfer", 0.1)
    assert phase.breakdown == {"gemv": 0.5, "transfer": 0.1}


def test_ledger_totals_means_and_last():
    ledger = TimingLedger()
    ledger.record(PhaseTiming("apply", 1.0))
    ledger.record(PhaseTiming("apply", 3.0))
    ledger.record(PhaseTiming("preprocessing", 10.0))
    assert ledger.total("apply") == pytest.approx(4.0)
    assert ledger.mean("apply") == pytest.approx(2.0)
    assert ledger.count("apply") == 2
    assert ledger.last("apply").simulated_seconds == 3.0
    assert ledger.last("preparation") is None
    assert ledger.mean("preparation") == 0.0


@settings(max_examples=40, deadline=None)
@given(
    n_threads=st.integers(min_value=1, max_value=8),
    start_index=st.integers(min_value=0, max_value=7),
    costs=st.lists(st.floats(min_value=0.0, max_value=5.0), min_size=0, max_size=40),
)
def test_advance_many_matches_per_item_loop(n_threads, start_index, costs):
    """The vectorized advancement is equivalent to the per-item loop."""
    looped = ThreadClocks(n_threads, origin=1.5)
    for i, cost in enumerate(costs):
        looped.advance(start_index + i, cost)
    batched = ThreadClocks(n_threads, origin=1.5)
    batched.advance_many(costs, start_index=start_index)
    for t in range(n_threads):
        assert batched.clocks[t] == pytest.approx(looped.clocks[t], rel=1e-12)
    assert batched.elapsed == pytest.approx(looped.elapsed, rel=1e-12)


def test_advance_many_rejects_negative_costs():
    clocks = ThreadClocks(2)
    with pytest.raises(ValueError):
        clocks.advance_many([1.0, -0.5])
