"""Tests of the top-level package interface (lazy re-exports, version)."""

from __future__ import annotations

import pytest

import repro


def test_version_string():
    assert isinstance(repro.__version__, str)
    assert repro.__version__.count(".") == 2


def test_lazy_exports_resolve():
    assert repro.HeatTransferProblem is not None
    assert repro.FetiSolver is not None
    assert repro.AssemblyConfig is not None
    assert repro.structured_mesh(2, 1).nnodes == 4
    # resolved names are cached in the module namespace
    assert "FetiSolver" in vars(repro)


def test_dir_lists_lazy_names():
    names = dir(repro)
    assert "FetiProblem" in names
    assert "DualOperatorApproach" in names


def test_unknown_attribute_raises():
    with pytest.raises(AttributeError):
        _ = repro.not_a_real_symbol
