"""Tests of the baseline comparator and the ``repro-bench`` CLI."""

from __future__ import annotations

import copy
import json

import pytest

from repro.bench import registry
from repro.bench.baseline import (
    Tolerances,
    compare_directories,
    compare_records,
)
from repro.bench.cli import main
from repro.bench.runner import run_scenario, write_record


@pytest.fixture(scope="module")
def record():
    return run_scenario(registry.get("smoke_heat_2d")).record


def _slowed(record, factor=2.0, metric="apply_seconds", category="simulated"):
    """A deep copy of ``record`` with one metric of one point scaled."""
    fresh = copy.deepcopy(record)
    fresh["points"][0][category][metric] *= factor
    return fresh


def test_identical_records_compare_ok(record):
    report = compare_records(record, copy.deepcopy(record))
    assert report.ok
    assert report.exit_code == 0
    assert report.compared == ["smoke_heat_2d"]
    assert "OK" in report.summary()


def test_synthetic_slow_record_is_a_blocking_regression(record):
    report = compare_records(record, _slowed(record, 2.0))
    assert not report.ok
    assert report.exit_code == 1
    (diff,) = report.blocking
    assert diff.kind == "regression"
    assert diff.metric == "simulated.apply_seconds"
    assert diff.rel_change == pytest.approx(1.0)
    assert "regression (blocking)" in report.summary()


def test_improvement_is_reported_but_not_blocking(record):
    report = compare_records(record, _slowed(record, 0.5))
    assert report.ok
    assert report.exit_code == 0
    (diff,) = report.differences
    assert diff.kind == "improvement"


def test_tolerance_absorbs_small_drift(record):
    fresh = _slowed(record, 1.04)
    assert compare_records(record, fresh, Tolerances(simulated_rtol=0.05)).ok
    assert not compare_records(record, fresh, Tolerances(simulated_rtol=0.01)).ok


def test_wall_metrics_gated_only_when_requested(record):
    fresh = _slowed(record, 10.0, category="wall")
    assert compare_records(record, fresh).ok
    report = compare_records(record, fresh, Tolerances(wall_rtol=0.5))
    assert not report.ok
    assert report.blocking[0].metric == "wall.apply_seconds"


def test_invariant_mismatch_is_blocking(record):
    fresh = copy.deepcopy(record)
    fresh["points"][0]["invariants"]["n_lambda"] += 1
    report = compare_records(record, fresh)
    assert report.exit_code == 1
    assert report.blocking[0].metric == "invariants.n_lambda"
    assert report.blocking[0].kind == "mismatch"


def test_point_set_mismatch_is_blocking(record):
    fresh = copy.deepcopy(record)
    dropped = fresh["points"].pop()
    report = compare_records(record, fresh)
    assert not report.ok
    assert any(dropped["key"] == d.point for d in report.blocking)


def test_schema_version_mismatch_is_blocking(record):
    stale = copy.deepcopy(record)
    stale["schema_version"] = 1
    report = compare_records(stale, copy.deepcopy(record))
    assert not report.ok
    assert "schema_version" in report.blocking[0].metric


def test_compare_directories_and_missing_baseline(tmp_path, record):
    results, baselines = tmp_path / "results", tmp_path / "baselines"
    write_record(record, results)
    # no baseline committed yet -> setup error (exit 2), not a regression
    report = compare_directories(results, baselines)
    assert report.exit_code == 2
    assert report.missing

    write_record(record, baselines)
    assert compare_directories(results, baselines).exit_code == 0

    # restricting to a scenario without a fresh record is a setup error too
    report = compare_directories(results, baselines, scenario_names=["batched_apply"])
    assert report.exit_code == 2


def test_compare_directories_empty_results_dir(tmp_path):
    report = compare_directories(tmp_path, tmp_path)
    assert report.exit_code == 2


def test_corrupt_record_is_a_setup_error_not_a_regression(tmp_path, record):
    """A truncated/garbage BENCH_*.json must yield exit 2, not a crash."""
    results, baselines = tmp_path / "results", tmp_path / "baselines"
    path = write_record(record, results)
    write_record(record, baselines)
    path.write_text('{"schema_version": 2, "points": [')  # truncated JSON
    report = compare_directories(results, baselines)
    assert report.exit_code == 2
    assert any("unreadable record" in m for m in report.missing)

    # a corrupt baseline is classified the same way
    path.write_text(json.dumps(record))
    (baselines / path.name).write_text("[]")  # valid JSON, not a record object
    report = compare_directories(results, baselines)
    assert report.exit_code == 2


# --------------------------------------------------------------------- #
# CLI                                                                    #
# --------------------------------------------------------------------- #
def test_cli_list_enumerates_scenarios(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in registry.names():
        assert name in out
    assert main(["list", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert len(payload) >= 8
    assert {p["physics"] for p in payload} == {"heat", "elasticity"}


def test_cli_list_tag_selection(capsys):
    assert main(["list", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "smoke_heat_2d" in out
    assert "heat_2d_sizes" not in out


def test_cli_unknown_scenario_or_tag_exits_2(capsys):
    assert main(["run", "no_such_scenario"]) == 2
    assert "unknown scenario" in capsys.readouterr().err
    assert main(["list", "--tag", "no_such_tag"]) == 2


def test_cli_run_compare_regression_roundtrip(tmp_path, capsys):
    """End-to-end: run -> compare OK -> inject slow record -> compare fails."""
    baselines, results = tmp_path / "baselines", tmp_path / "results"
    assert main(["run", "smoke_heat_2d", "-o", str(baselines)]) == 0
    assert main(["run", "smoke_heat_2d", "-o", str(results)]) == 0
    capsys.readouterr()

    args = ["compare", "--results", str(results), "--baselines", str(baselines)]
    assert main(args) == 0
    assert "OK" in capsys.readouterr().out

    # synthetic regression: make the fresh record 3x slower than the baseline
    path = results / "BENCH_smoke_heat_2d.json"
    fresh = json.loads(path.read_text())
    fresh["points"][-1]["simulated"]["apply_seconds"] *= 3.0
    path.write_text(json.dumps(fresh))
    assert main(args) == 1
    assert "regression" in capsys.readouterr().out

    # a generous tolerance lets the same record pass again
    assert main([*args, "--rtol", "5.0"]) == 0


def test_cli_compare_missing_results_dir(tmp_path, capsys):
    code = main(
        ["compare", "--results", str(tmp_path / "nope"), "--baselines", str(tmp_path)]
    )
    assert code == 2
    assert "MISSING" in capsys.readouterr().out
