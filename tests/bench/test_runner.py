"""Tests of the scenario runner and its benchmark records."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.bench import registry
from repro.bench.registry import Scenario, Workload
from repro.bench.runner import (
    SCHEMA_VERSION,
    InvariantViolation,
    load_record,
    measure_point,
    point_key,
    record_filename,
    run_scenario,
    write_record,
)
from repro.feti.config import DualOperatorApproach


@pytest.fixture(scope="module")
def smoke_result():
    return run_scenario(registry.get("smoke_heat_2d"))


def test_record_schema_and_environment_stamp(smoke_result):
    record = smoke_result.record
    assert record["schema_version"] == SCHEMA_VERSION
    assert record["benchmark"] == "smoke_heat_2d"
    assert record["scenario"]["physics"] == "heat"
    assert record["scenario"]["dim"] == 2
    assert "quick" in record["scenario"]["tags"]
    env = record["environment"]
    for key in ("git_sha", "python", "numpy", "scipy", "platform", "created_utc"):
        assert key in env, key
    assert env["repro_version"]


def test_record_points_carry_metrics_and_invariants(smoke_result):
    points = smoke_result.record["points"]
    assert len(points) == 2  # two approaches, one workload
    for point in points:
        assert point["invariants"]["n_subdomains"] == 2
        assert point["invariants"]["n_lambda"] > 0
        assert point["simulated"]["preprocessing_seconds"] > 0.0
        assert point["simulated"]["apply_seconds"] > 0.0
        assert point["wall"]["apply_seconds"] > 0.0
    keys = {p["key"] for p in points}
    assert keys == {
        "2x1/c2/impl mkl/batched",
        "2x1/c2/expl mkl/batched",
    }


def test_sweep_result_is_queryable(smoke_result):
    sweep = smoke_result.sweep
    recs = sweep.filter(approach=DualOperatorApproach.EXPLICIT_MKL)
    assert len(recs) == 1
    assert recs[0]["sim_apply_seconds"] > 0.0
    assert sweep.column("n_lambda") == [6, 6]


def test_record_is_json_serializable_and_roundtrips(smoke_result, tmp_path):
    path = write_record(smoke_result.record, tmp_path)
    assert path.name == "BENCH_smoke_heat_2d.json"
    assert load_record(path) == json.loads(json.dumps(smoke_result.record))


def test_record_filename_sanitizes():
    assert record_filename("a b/c") == "BENCH_a_b_c.json"


def test_point_key_format():
    key = point_key((4, 4), 7, DualOperatorApproach.EXPLICIT_HYBRID, False)
    assert key == "4x4/c7/expl hybrid/looped"
    scalar = point_key((4, 4), 7, DualOperatorApproach.EXPLICIT_HYBRID, True, False)
    assert scalar == "4x4/c7/expl hybrid/batched/scalar"


def test_point_key_execution_suffix_preserves_historical_keys():
    from repro.runtime.executor import ExecutionSpec

    base = point_key((8, 8), 8, DualOperatorApproach.EXPLICIT_MKL, True)
    assert base == "8x8/c8/expl mkl/batched"
    # The serial execution spec leaves the key unchanged (old records pair).
    serial = point_key(
        (8, 8), 8, DualOperatorApproach.EXPLICIT_MKL, True, True, ExecutionSpec()
    )
    assert serial == base
    sharded = point_key(
        (8, 8), 8, DualOperatorApproach.EXPLICIT_MKL, True, True,
        ExecutionSpec("processes", 4),
    )
    assert sharded == "8x8/c8/expl mkl/batched/processes4"


def test_point_key_precision_suffix_preserves_historical_keys():
    base = point_key((4, 4), 7, DualOperatorApproach.EXPLICIT_MKL, True)
    fp64 = point_key(
        (4, 4), 7, DualOperatorApproach.EXPLICIT_MKL, True, precision="fp64"
    )
    assert fp64 == base  # the default policy leaves old keys unchanged
    fp32 = point_key(
        (4, 4), 7, DualOperatorApproach.EXPLICIT_MKL, True, precision="fp32_ir"
    )
    assert fp32 == base + "/fp32_ir"


def test_measure_point_is_cached_and_deterministic():
    scenario = registry.get("smoke_heat_2d")
    spec = scenario.spec_with()
    a = measure_point(
        spec, DualOperatorApproach.IMPLICIT_MKL, True, n_applies=scenario.n_applies
    )
    b = measure_point(
        spec, DualOperatorApproach.IMPLICIT_MKL, True, n_applies=scenario.n_applies
    )
    assert a is b  # lru_cache shares points across scenarios and tests
    assert np.all(np.isfinite(a.q))


def test_derived_speedup_present_only_with_both_batched_variants(smoke_result):
    assert "derived" not in smoke_result.record
    mini = Scenario(
        name="tmp_batched_mini",
        description="batched-vs-looped on the smoke workload",
        base=Workload("heat", 2, (2, 1), 2),
        batched=(True, False),
        n_applies=2,
    )
    record = run_scenario(mini).record
    (key,) = record["derived"]
    assert key == "wall_apply_speedup[2x1/c2/expl mkl]"
    assert record["derived"][key] > 0.0


def test_expected_invariant_violation_raises():
    bad = Scenario(
        name="tmp_bad_expected",
        description="declares the wrong subdomain count",
        base=Workload("heat", 2, (2, 1), 2),
        n_applies=1,
        expected={"n_subdomains": 99},
    )
    with pytest.raises(InvariantViolation, match="n_subdomains=2"):
        run_scenario(bad)
    # the checks can be disabled explicitly
    record = run_scenario(bad, check_invariants=False).record
    assert record["points"]


def test_unknown_expected_invariant_key_raises():
    bad = Scenario(
        name="tmp_bad_key",
        description="declares an unknown invariant",
        base=Workload("heat", 2, (2, 1), 2),
        n_applies=1,
        expected={"n_gpus": 1},
    )
    with pytest.raises(InvariantViolation, match="unknown invariant"):
        run_scenario(bad)


class TestExecutionAxis:
    """The runtime execution sweep of the bench layer (PR 5)."""

    @pytest.fixture(scope="class")
    def scaling_result(self):
        from repro.runtime.executor import ExecutionSpec

        scenario = Scenario(
            name="tiny_parallel",
            description="execution-axis test scenario",
            base=Workload("heat", 2, (2, 2), 3),
            approaches=(DualOperatorApproach.EXPLICIT_MKL,),
            execution=(None, ExecutionSpec("threads", 2)),
            n_applies=1,
        )
        return run_scenario(scenario)

    def test_points_carry_the_execution_stamp(self, scaling_result):
        points = {p["key"]: p for p in scaling_result.record["points"]}
        assert set(points) == {
            "2x2/c3/expl mkl/batched",
            "2x2/c3/expl mkl/batched/threads2",
        }
        assert points["2x2/c3/expl mkl/batched"]["execution"] is None
        assert points["2x2/c3/expl mkl/batched/threads2"]["execution"] == {
            "backend": "threads",
            "workers": 2,
        }

    def test_derived_parallel_speedup_is_emitted(self, scaling_result):
        derived = scaling_result.record["derived"]
        key = "wall_preprocessing_speedup[2x2/c3/expl mkl/threads2]"
        assert key in derived
        assert derived[key] > 0.0

    def test_simulated_metrics_are_identical_across_executors(self, scaling_result):
        points = {p["key"]: p for p in scaling_result.record["points"]}
        serial = points["2x2/c3/expl mkl/batched"]["simulated"]
        sharded = points["2x2/c3/expl mkl/batched/threads2"]["simulated"]
        assert serial == sharded

    def test_operator_consistency_covers_execution_variants(self):
        # run_scenario's invariant check pairs every execution variant of a
        # workload against one reference; a divergence would have raised in
        # the fixture above.  Exercise the checker directly with a forced
        # divergence to prove the execution axis participates.
        from repro.bench.runner import _check_operator_consistency
        from repro.runtime.executor import ExecutionSpec

        scenario = registry.get("smoke_heat_2d")
        q = np.ones(3)
        qs = {
            ((2, 1), 2, DualOperatorApproach.IMPLICIT_MKL, True, True, None, "dense"): q,
            (
                (2, 1), 2, DualOperatorApproach.IMPLICIT_MKL, True, True,
                ExecutionSpec("threads", 2), "dense",
            ): 2.0 * q,
        }
        with pytest.raises(InvariantViolation, match="threads2"):
            _check_operator_consistency(scenario, qs)


class TestPointTimeout:
    def test_hung_point_raises_point_timeout(self, monkeypatch):
        import time as time_mod

        from repro.bench import runner as runner_mod

        def hang(*args, **kwargs):
            time_mod.sleep(30.0)

        monkeypatch.setattr(runner_mod, "measure_point", hang)
        scenario = registry.get("smoke_heat_2d")
        with pytest.raises(runner_mod.PointTimeout, match="timeout"):
            run_scenario(scenario, check_invariants=False, point_timeout=0.2)

    def test_fast_points_pass_under_a_budget(self):
        scenario = registry.get("smoke_heat_2d")
        result = run_scenario(scenario, point_timeout=60.0)
        assert result.record["points"]
