"""Tests of the benchmark scenario registry."""

from __future__ import annotations

import pytest

from repro.bench import registry
from repro.bench.registry import Scenario, Workload
from repro.feti.config import DualOperatorApproach
from repro.feti.operators import (
    ExplicitCpuDualOperator,
    ExplicitGpuDualOperator,
    HybridDualOperator,
    ImplicitCpuDualOperator,
    ImplicitGpuDualOperator,
    make_dual_operator,
)
from repro.feti.problem import FetiProblem


def test_registry_enumerates_enough_scenarios():
    names = registry.names()
    assert len(names) >= 8
    assert len(set(names)) == len(names)


def test_registry_covers_both_physics_and_dimensionalities():
    selected = registry.scenarios()
    assert {s.base.physics for s in selected} == {"heat", "elasticity"}
    assert {s.base.dim for s in selected} == {2, 3}


def test_quick_scenarios_cover_all_five_operator_backends():
    """The CI gate set exercises every operator backend class."""
    quick = registry.scenarios("quick")
    assert len(quick) >= 5
    approaches = {a for s in quick for a in s.approaches}
    problem = registry.get("smoke_heat_2d").build_problem()
    backends = {type(make_dual_operator(a, problem)) for a in approaches}
    assert backends == {
        ImplicitCpuDualOperator,
        ExplicitCpuDualOperator,
        ImplicitGpuDualOperator,
        ExplicitGpuDualOperator,
        HybridDualOperator,
    }


def test_quick_scenarios_cover_the_batched_engine_toggle():
    quick = registry.scenarios("quick")
    batched_values = {b for s in quick for b in s.batched}
    assert batched_values == {True, False}


def test_all_nine_approaches_registered_somewhere():
    approaches = {a for s in registry.scenarios() for a in s.approaches}
    assert approaches == set(DualOperatorApproach)


def test_get_unknown_scenario_raises_with_known_names():
    with pytest.raises(KeyError, match="unknown scenario.*smoke_heat_2d"):
        registry.get("no_such_scenario")


def test_register_rejects_duplicate_names():
    scenario = registry.get("smoke_heat_2d")
    with pytest.raises(ValueError, match="already registered"):
        registry.register(scenario)


def test_workload_spec_validation():
    with pytest.raises(ValueError, match="unknown physics"):
        Workload("plasma", 2, (2, 2), 4)
    with pytest.raises(ValueError, match="dim=3"):
        Workload("heat", 3, (2, 2), 4)


def test_workload_spec_alias_is_removed():
    """The deprecated PR-2/3 alias was removed in PR 6."""
    import repro.bench
    import repro.bench.registry as reg_module

    with pytest.raises(AttributeError):
        reg_module.WorkloadSpec
    with pytest.raises(AttributeError):
        repro.bench.WorkloadSpec


def test_scenario_grid_axes_and_point_count():
    scenario = registry.get("heat_2d_scaling")
    grid = scenario.grid()
    assert sorted(grid) == [
        "approach", "batched", "blocked", "cells", "coarse", "execution",
        "precision", "subdomains",
    ]
    assert grid["subdomains"] == [(2, 2), (4, 4)]
    assert grid["execution"] == [None]
    assert grid["precision"] == ["fp64"]
    assert scenario.n_points() == 4

    sizes = registry.get("heat_2d_sizes")
    assert sizes.grid()["cells"] == [7, 15, 31]
    assert sizes.n_points() == 27


def test_parallel_scaling_scenario_sweeps_worker_counts():
    from repro.runtime.executor import ExecutionSpec

    scenario = registry.get("parallel_scaling")
    assert scenario.execution[0] is None  # the serial reference point
    parallel = [e for e in scenario.execution if e is not None]
    assert ExecutionSpec("threads", 4) in parallel
    assert ExecutionSpec("processes", 4) in parallel
    assert {"quick", "runtime"} <= scenario.tags
    assert scenario.expected["n_subdomains"] == 64


def test_spec_with_substitutes_grid_axes():
    scenario = registry.get("heat_2d_scaling")
    spec = scenario.spec_with(subdomains=(4, 4), cells=3)
    assert spec.subdomains == (4, 4)
    assert spec.cells == 3
    # the base spec is untouched
    assert scenario.base.subdomains == (2, 2)
    assert scenario.base.cells == 4


def test_build_problem_is_cached_and_consistent():
    scenario = registry.get("smoke_heat_2d")
    problem = scenario.build_problem()
    assert isinstance(problem, FetiProblem)
    assert problem.n_subdomains == scenario.base.n_subdomains == 2
    assert scenario.build_problem() is problem


def test_scenario_tags_include_the_ci_gate_set():
    assert "quick" in registry.all_tags()
    assert registry.names("quick")
    assert registry.names("no_such_tag") == []


def test_scenarios_declare_expected_invariants():
    for scenario in registry.scenarios("quick"):
        assert scenario.expected, scenario.name


def test_custom_scenario_roundtrip():
    scenario = Scenario(
        name="tmp_custom",
        description="ad-hoc",
        base=Workload("heat", 2, (1, 2), 2),
    )
    assert scenario.grid()["subdomains"] == [(1, 2)]
    assert scenario.n_points() == 1
    assert scenario.build_problem().n_subdomains == 2
