"""Tests of the ``precision_phase`` scenario and the bench precision axis."""

from __future__ import annotations

import dataclasses

import pytest

from repro.api.workload import Workload
from repro.bench import registry
from repro.bench.precision_phase import PrecisionPhaseScenario
from repro.bench.runner import InvariantViolation, run_scenario
from repro.feti.config import DualOperatorApproach


def _shrunken(**overrides):
    """A fast copy of the registered scenario (one approach, tiny mesh)."""
    defaults = dict(
        base=Workload("heat", 2, (2, 2), 4),
        approaches=(DualOperatorApproach("expl mkl"),),
    )
    defaults.update(overrides)
    return dataclasses.replace(
        registry.get("precision_phase"), name="precision_phase_test", **defaults
    )


@pytest.fixture(scope="module")
def record():
    return _shrunken().run_record()


def test_record_shape_and_point_set(record):
    assert record["benchmark"] == "precision_phase_test"
    keys = [p["key"] for p in record["points"]]
    assert keys == ["expl mkl/fp64", "expl mkl/fp32", "expl mkl/fp32_ir"]
    for point in record["points"]:
        assert point["invariants"]["n_lambda"] > 0
        assert set(point["simulated"]) == {
            "factor_bytes", "pack_bytes", "arena_bytes", "resident_bytes",
        }
        assert set(point["wall"]) == {
            "solve_seconds", "true_residual", "iterations", "converged",
        }
        assert point["wall"]["converged"] == 1.0
    block = record["precision_phase"]
    assert block["precisions"] == ["fp64", "fp32", "fp32_ir"]
    assert block["min_factor_bytes_reduction"] == pytest.approx(1.7)


def test_fp32_halves_factor_bytes_exactly(record):
    by_key = {p["key"]: p for p in record["points"]}
    fp64 = by_key["expl mkl/fp64"]["simulated"]["factor_bytes"]
    fp32 = by_key["expl mkl/fp32"]["simulated"]["factor_bytes"]
    assert fp64 == 2 * fp32
    assert record["derived"]["factor_bytes_reduction[expl mkl]"] == pytest.approx(2.0)
    assert record["derived"]["resident_bytes_reduction[expl mkl]"] > 1.7


def test_ir_recovers_fp64_level_residuals(record):
    by_key = {p["key"]: p for p in record["points"]}
    fp64_res = by_key["expl mkl/fp64"]["wall"]["true_residual"]
    ir_res = by_key["expl mkl/fp32_ir"]["wall"]["true_residual"]
    assert ir_res <= max(10.0 * fp64_res, 1e-11)


def test_residual_gate_flags_a_refinement_regression():
    scenario = _shrunken()
    residuals = {("expl mkl", "fp64"): 1e-10, ("expl mkl", "fp32_ir"): 1e-6}
    storage = {
        ("expl mkl", "fp64"): {"factor": 200},
        ("expl mkl", "fp32"): {"factor": 100},
    }
    with pytest.raises(InvariantViolation, match="refinement"):
        scenario._check_invariants(residuals, storage)


def test_bytes_gate_flags_a_storage_policy_regression():
    scenario = _shrunken()
    residuals = {("expl mkl", "fp64"): 1e-10, ("expl mkl", "fp32_ir"): 1e-10}
    storage = {
        ("expl mkl", "fp64"): {"factor": 200},
        ("expl mkl", "fp32"): {"factor": 200},  # demotion stopped working
    }
    with pytest.raises(InvariantViolation, match="factor bytes"):
        scenario._check_invariants(residuals, storage)


def test_run_scenario_delegates_to_run_record():
    result = run_scenario(_shrunken())
    assert result.record["benchmark"] == "precision_phase_test"


def test_registered_scenario_is_quick_gated():
    scenario = registry.get("precision_phase")
    assert isinstance(scenario, PrecisionPhaseScenario)
    assert {"quick", "memory", "precision"} <= scenario.tags
    assert scenario.precision == ("fp64", "fp32", "fp32_ir")
    assert scenario.axes()["precision"] == ["fp64", "fp32", "fp32_ir"]
    assert scenario.n_points() == 9
