"""Tests of the serve_load bench scenario and its runner dispatch."""

import pytest

from repro.bench import registry
from repro.bench.runner import run_scenario
from repro.bench.serve_load import ServeScenario


@pytest.fixture(scope="module")
def result():
    return run_scenario(registry.get("serve_load"))


def test_serve_load_is_registered_and_quick():
    scenario = registry.get("serve_load")
    assert isinstance(scenario, ServeScenario)
    assert "quick" in scenario.tags
    assert scenario.n_points() == 2
    assert len(scenario.request_mix()) == len(scenario.presets) * len(
        scenario.rhs_factors
    )


def test_record_has_cold_and_warm_points(result):
    keys = [p["key"] for p in result.record["points"]]
    assert keys == ["cold", "warm"]
    n_requests = result.record["serve"]["requests_per_pass"]
    for point in result.record["points"]:
        assert point["invariants"]["requests"] == n_requests
        assert point["invariants"]["errors"] == 0
    cold, warm = result.record["points"]
    assert cold["invariants"]["cache_hits"] == 0
    assert warm["invariants"]["cache_hits"] == n_requests


def test_warm_pass_is_measurably_faster_than_cold(result):
    cold, warm = result.record["points"]
    assert warm["wall"]["p50_seconds"] < cold["wall"]["p50_seconds"]
    assert result.record["derived"]["serve_warm_speedup[p50]"] > 1.0


def test_simulated_metrics_are_identical_across_passes(result):
    """Warm responses replay the cold payloads, so the deterministic
    (comparator-gated) metrics must agree between the two points."""
    cold, warm = result.record["points"]
    for metric, value in cold["simulated"].items():
        assert warm["simulated"][metric] == pytest.approx(value)
    assert cold["simulated"]["pcpg_iterations"] > 0


def test_record_is_comparator_stable(result):
    """A re-run compares clean against itself (the CI gate contract)."""
    from repro.bench.baseline import compare_records

    again = run_scenario(registry.get("serve_load")).record
    report = compare_records(result.record, again)
    assert report.exit_code == 0, report.summary()
