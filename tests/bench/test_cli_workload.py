"""Tests of the API-facing CLI surface: ``run --workload`` and ``compare --json``."""

from __future__ import annotations

import json

import pytest

from repro.api import Workload, workload_preset
from repro.bench.cli import main
from repro.bench.runner import load_record


def test_run_workload_preset_writes_a_record(tmp_path, capsys):
    assert main(["run", "--workload", "heat-2d-quick", "-o", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "workload_heat-2d-quick" in out
    record = load_record(tmp_path / "BENCH_workload_heat-2d-quick.json")
    preset = workload_preset("heat-2d-quick")
    assert record["scenario"]["physics"] == preset.physics
    assert record["points"][0]["approach"] == "expl mkl"
    assert record["points"][0]["invariants"]["n_subdomains"] == preset.n_subdomains


def test_run_workload_json_file_uses_the_api_serialization(tmp_path, capsys):
    workload = Workload("heat", 2, (2, 1), 2)
    path = tmp_path / "custom.json"
    path.write_text(workload.to_json())
    out_dir = tmp_path / "results"
    assert main(["run", "--workload", str(path), "-o", str(out_dir)]) == 0
    record = load_record(out_dir / "BENCH_workload_custom.json")
    assert record["points"][0]["invariants"]["n_subdomains"] == 2


def test_run_workload_accepts_approach_overrides(tmp_path):
    assert (
        main(
            [
                "run",
                "--workload",
                "heat-2d-quick",
                "--approach",
                "impl mkl",
                "--approach",
                "expl mkl",
                "-o",
                str(tmp_path),
            ]
        )
        == 0
    )
    record = load_record(tmp_path / "BENCH_workload_heat-2d-quick.json")
    assert [p["approach"] for p in record["points"]] == ["impl mkl", "expl mkl"]


def test_run_precision_override_stamps_every_point(tmp_path):
    assert (
        main(["run", "smoke_heat_2d", "--precision", "fp32", "-o", str(tmp_path)])
        == 0
    )
    record = load_record(tmp_path / "BENCH_smoke_heat_2d.json")
    assert record["points"], "the override must not drop grid points"
    assert all(p["precision"] == "fp32" for p in record["points"])
    assert all(p["key"].endswith("/fp32") for p in record["points"])


def test_list_json_shows_the_precision_axis(capsys):
    assert main(["list", "precision_phase", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["axes"]["precision"] == ["fp64", "fp32", "fp32_ir"]


def test_run_workload_rejects_unknown_sources_and_combinations(tmp_path, capsys):
    assert main(["run", "--workload", "no-such-preset", "-o", str(tmp_path)]) == 2
    assert "registered presets" in capsys.readouterr().err
    assert main(["run", "--workload", "heat-2d-quick", "--quick"]) == 2
    assert "cannot be combined" in capsys.readouterr().err
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"physics": "plasma", "dim": 2, "subdomains": [1, 1], "cells": 1}))
    assert main(["run", "--workload", str(bad), "-o", str(tmp_path)]) == 2
    assert "invalid workload" in capsys.readouterr().err


def test_run_approach_without_workload_is_rejected(capsys):
    assert main(["run", "--quick", "--approach", "impl mkl"]) == 2
    assert "only applies to an ad-hoc --workload run" in capsys.readouterr().err


def test_run_workload_rejects_unknown_approach(tmp_path, capsys):
    assert (
        main(["run", "--workload", "heat-2d-quick", "--approach", "abacus", "-o", str(tmp_path)])
        == 2
    )
    assert "valid approaches" in capsys.readouterr().err


@pytest.fixture()
def comparable_dirs(tmp_path):
    """A fresh-results/baselines pair for one tiny scenario."""
    results, baselines = tmp_path / "results", tmp_path / "baselines"
    assert main(["run", "smoke_heat_2d", "-o", str(results)]) == 0
    assert main(["run", "smoke_heat_2d", "-o", str(baselines)]) == 0
    return results, baselines


def test_compare_json_reports_ok(comparable_dirs, capsys):
    results, baselines = comparable_dirs
    capsys.readouterr()
    code = main(
        [
            "compare",
            "smoke_heat_2d",
            "--results",
            str(results),
            "--baselines",
            str(baselines),
            "--json",
        ]
    )
    report = json.loads(capsys.readouterr().out)
    assert code == 0
    assert report["ok"] is True
    assert report["exit_code"] == 0
    assert report["compared"] == ["smoke_heat_2d"]
    assert report["differences"] == []


def test_compare_json_reports_regressions_machine_readably(comparable_dirs, capsys):
    results, baselines = comparable_dirs
    path = results / "BENCH_smoke_heat_2d.json"
    record = json.loads(path.read_text())
    record["points"][0]["simulated"]["apply_seconds"] *= 10.0
    path.write_text(json.dumps(record))
    capsys.readouterr()
    code = main(
        [
            "compare",
            "smoke_heat_2d",
            "--results",
            str(results),
            "--baselines",
            str(baselines),
            "--json",
        ]
    )
    report = json.loads(capsys.readouterr().out)
    assert code == 1
    assert report["ok"] is False
    kinds = {d["kind"] for d in report["differences"]}
    assert "regression" in kinds
    blocking = [d for d in report["differences"] if d["blocking"]]
    assert blocking and blocking[0]["metric"] == "simulated.apply_seconds"
    assert blocking[0]["rel_change"] == pytest.approx(9.0)
