"""Tests of the ``coarse_phase`` scenario and the bench-layer coarse axis."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.api.workload import Workload
from repro.bench import registry
from repro.bench.coarse_phase import CoarsePhaseScenario
from repro.bench.runner import (
    InvariantViolation,
    point_key,
    run_scenario,
)
from repro.feti.config import DualOperatorApproach


def _shrunken(**overrides):
    """A fast copy of the registered scenario (seconds, not minutes)."""
    defaults = dict(
        base=Workload("heat", 2, (8, 8), 2, n_clusters=4),
        backends=(("serial", None), ("threads2", "threads:2")),
        rounds=1,
        n_applies=2,
        min_modeled_factor_speedup=1.1,
        min_modeled_solve_speedup=1.0,
    )
    defaults.update(overrides)
    return dataclasses.replace(
        registry.get("coarse_phase"), name="coarse_phase_test", **defaults
    )


@pytest.fixture(scope="module")
def record():
    return _shrunken().run_record()


def test_record_shape_and_point_set(record):
    assert record["benchmark"] == "coarse_phase_test"
    keys = [p["key"] for p in record["points"]]
    assert keys == [
        "dense/serial",
        "dense/threads2",
        "hierarchical/serial",
        "hierarchical/threads2",
    ]
    for point in record["points"]:
        assert point["invariants"]["n_lambda"] > 0
        assert point["invariants"]["n_kernel"] == 64
        assert set(point["simulated"]) == {"factor_flops", "solve_flops"}
        assert set(point["wall"]) == {"factor_seconds", "apply_seconds"}
        assert point["wall"]["factor_seconds"] > 0.0
    block = record["coarse_phase"]
    assert block["backends"] == ["serial", "threads2"]
    assert block["min_modeled_factor_speedup"] == 1.1


def test_record_derived_speedups(record):
    derived = record["derived"]
    assert derived["modeled_factor_speedup"] >= 1.1
    assert derived["modeled_solve_speedup"] >= 1.0
    assert "wall_coarse_factor_speedup" in derived
    assert "wall_coarse_apply_speedup[serial]" in derived
    assert "wall_coarse_apply_speedup[threads2]" in derived


def test_modeled_flops_are_deterministic(record):
    again = _shrunken().run_record()
    for p, q in zip(record["points"], again["points"]):
        assert p["simulated"] == q["simulated"]


def test_unreachable_floor_is_an_invariant_violation():
    scenario = _shrunken(min_modeled_factor_speedup=1e6)
    with pytest.raises(InvariantViolation, match="floor"):
        scenario.run_record()


def test_run_scenario_delegates_to_run_record():
    result = run_scenario(_shrunken())
    assert result.record["benchmark"] == "coarse_phase_test"


def test_registered_scenario_is_quick_gated():
    scenario = registry.get("coarse_phase")
    assert isinstance(scenario, CoarsePhaseScenario)
    assert "quick" in scenario.tags
    assert scenario.base.n_clusters == 4
    assert scenario.min_modeled_factor_speedup == 2.0
    assert scenario.min_modeled_solve_speedup == 1.5


def test_multicluster_scenario_sweeps_the_coarse_axis():
    scenario = registry.get("multicluster_heat_2d")
    assert "quick" in scenario.tags
    assert scenario.grid()["coarse"] == ["dense", "hierarchical"]
    assert scenario.axes()["coarse"] == ["dense", "hierarchical"]
    assert scenario.n_points() == 4


def test_point_key_coarse_suffix_preserves_historical_keys():
    base = point_key((4, 4), 4, DualOperatorApproach.EXPLICIT_MKL, True)
    assert base == "4x4/c4/expl mkl/batched"
    hier = point_key(
        (4, 4), 4, DualOperatorApproach.EXPLICIT_MKL, True, coarse="hierarchical"
    )
    assert hier == "4x4/c4/expl mkl/batched/hierarchical"
    dense = point_key(
        (4, 4), 4, DualOperatorApproach.EXPLICIT_MKL, True, coarse="dense"
    )
    assert dense == base


def test_multicluster_record_pairs_coarse_modes():
    result = run_scenario(registry.get("multicluster_heat_2d"))
    record = result.record
    coarse_values = {p["coarse"] for p in record["points"]}
    assert coarse_values == {"dense", "hierarchical"}
    for p in record["points"]:
        assert p["wall"]["coarse_factor_seconds"] > 0.0
    derived = record.get("derived", {})
    assert any(k.startswith("wall_coarse_factor_speedup[") for k in derived)
    assert any(k.startswith("wall_coarse_apply_speedup[") for k in derived)


def test_hierarchical_serial_apply_matches_dense(record):
    # The record's invariant gate already enforced <= 1e-12; double-check
    # the projector directly on the shrunken workload.
    from repro.api.workload import build_problem
    from repro.feti.projector import build_projector

    problem = build_problem(_shrunken().base)
    dense = build_projector(problem, mode="dense")
    hier = build_projector(problem, mode="hierarchical")
    x = np.arange(problem.n_lambda, dtype=float)
    denom = max(float(np.linalg.norm(dense.apply(x))), 1e-300)
    assert float(np.linalg.norm(hier.apply(x) - dense.apply(x))) / denom <= 1e-12
