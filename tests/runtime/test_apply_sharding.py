"""Sharded dual-operator apply: equality with the serial reference.

The apply phase is sharded across runtime executor workers (threads chunk
the packed batched kernels in-process; processes run them on arena-resident
inputs in pool workers).  The contract, per approach:

* ``threads`` — bitwise equal to serial (chunks of a batched ``matmul``
  are computed independently along the leading axis);
* ``processes`` — ≤1e-12 relative (same kernels on shared-memory views).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Session, SolverSpec, Workload
from repro.runtime.apply import min_shard_items, sharded_matvec

APPROACHES = [
    "impl mkl",
    "impl cholmod",
    "impl legacy",
    "impl modern",
    "expl mkl",
    "expl cholmod",
    "expl legacy",
    "expl modern",
    "expl hybrid",
]

HEAT = Workload("heat", 2, (3, 3), 6)


def _applied(approach, execution, lam):
    spec = (
        SolverSpec(approach=approach, execution=execution)
        if execution
        else SolverSpec(approach=approach)
    )
    with Session(spec) as session:
        operator = session.operator_for(HEAT)
        operator.prepare()
        operator.preprocess()
        return operator.apply(lam)


def _lam_for(approach):
    with Session(SolverSpec(approach=approach)) as session:
        n = session.problem(HEAT).n_lambda
    return np.random.default_rng(42).standard_normal(n)


@pytest.mark.parametrize("approach", APPROACHES)
def test_threads_sharded_apply_is_bitwise_equal_to_serial(approach, monkeypatch):
    monkeypatch.setenv("REPRO_APPLY_MIN_BATCH", "1")
    lam = _lam_for(approach)
    serial = _applied(approach, None, lam)
    sharded = _applied(approach, "threads:2", lam)
    assert np.array_equal(serial, sharded)


@pytest.mark.parametrize("approach", APPROACHES)
def test_processes_sharded_apply_within_1e12_of_serial(approach, monkeypatch):
    monkeypatch.setenv("REPRO_APPLY_MIN_BATCH", "1")
    lam = _lam_for(approach)
    serial = _applied(approach, None, lam)
    sharded = _applied(approach, "processes:2", lam)
    denom = max(np.linalg.norm(serial), 1e-300)
    assert np.linalg.norm(sharded - serial) / denom <= 1e-12


def test_min_shard_items_gates_tiny_packs(monkeypatch):
    monkeypatch.delenv("REPRO_APPLY_MIN_BATCH", raising=False)
    assert min_shard_items() == 16
    monkeypatch.setenv("REPRO_APPLY_MIN_BATCH", "3")
    assert min_shard_items() == 3
    monkeypatch.setenv("REPRO_APPLY_MIN_BATCH", "0")
    assert min_shard_items() == 1
    monkeypatch.setenv("REPRO_APPLY_MIN_BATCH", "not-a-number")
    assert min_shard_items() == 16


def test_sharded_matvec_serial_fallback_is_the_reference_path():
    """Without an executor the sharded entry point is exactly dense.matvec."""

    class _Map:
        n_items = 4

    class _Dense:
        map = _Map()

        def __init__(self):
            self.calls = []

        def matvec(self, p):
            self.calls.append("matvec")
            return p * 2.0

    dense = _Dense()
    out = sharded_matvec(dense, np.arange(4.0), None)
    assert dense.calls == ["matvec"]
    assert np.array_equal(out, np.arange(4.0) * 2.0)


@pytest.mark.parametrize("approach", ["expl mkl", "expl modern", "expl hybrid"])
def test_apply_multi_default_is_bitwise_k_applies(approach):
    with Session(SolverSpec(approach=approach)) as session:
        operator = session.operator_for(HEAT)
        operator.prepare()
        operator.preprocess()
        n = session.problem(HEAT).n_lambda
        rng = np.random.default_rng(3)
        block = rng.standard_normal((n, 3))
        multi = operator.apply_multi(block)
        for j in range(3):
            col = operator.apply(np.ascontiguousarray(block[:, j]))
            assert np.array_equal(multi[:, j], col)


@pytest.mark.parametrize("approach", ["expl mkl", "expl cholmod", "expl hybrid"])
def test_apply_multi_stacked_within_1e12_of_per_column(approach):
    with Session(SolverSpec(approach=approach)) as session:
        operator = session.operator_for(HEAT)
        operator.prepare()
        operator.preprocess()
        n = session.problem(HEAT).n_lambda
        rng = np.random.default_rng(8)
        block = rng.standard_normal((n, 4))
        plain = operator.apply_multi(block)
        stacked = operator.apply_multi(block, stacked=True)
        denom = max(np.linalg.norm(plain), 1e-300)
        assert np.linalg.norm(stacked - plain) / denom <= 1e-12


def test_apply_multi_requires_preprocessing():
    with Session() as session:
        operator = session.operator_for(HEAT)
        with pytest.raises(RuntimeError):
            operator.apply_multi(np.zeros((3, 2)))


# --------------------------------------------------------------------- #
# Stacked multi-RHS sharding                                             #
# --------------------------------------------------------------------- #
EXPLICIT = ["expl mkl", "expl cholmod", "expl modern", "expl hybrid"]


def _applied_multi(approach, execution, block):
    spec = (
        SolverSpec(approach=approach, execution=execution)
        if execution
        else SolverSpec(approach=approach)
    )
    with Session(spec) as session:
        operator = session.operator_for(HEAT)
        operator.prepare()
        operator.preprocess()
        return operator.apply_multi(block, stacked=True)


def _block_for(approach, k, seed=7):
    with Session(SolverSpec(approach=approach)) as session:
        n = session.problem(HEAT).n_lambda
    return np.random.default_rng(seed).standard_normal((n, k))


@pytest.mark.parametrize("approach", EXPLICIT)
def test_threads_sharded_multi_apply_is_bitwise_equal_to_serial(approach, monkeypatch):
    monkeypatch.setenv("REPRO_APPLY_MIN_BATCH", "1")
    block = _block_for(approach, 3)
    serial = _applied_multi(approach, None, block)
    sharded = _applied_multi(approach, "threads:2", block)
    assert np.array_equal(serial, sharded)


@pytest.mark.parametrize("approach", EXPLICIT)
def test_processes_sharded_multi_apply_within_1e12_of_serial(approach, monkeypatch):
    monkeypatch.setenv("REPRO_APPLY_MIN_BATCH", "1")
    block = _block_for(approach, 3)
    serial = _applied_multi(approach, None, block)
    sharded = _applied_multi(approach, "processes:2", block)
    denom = max(np.linalg.norm(serial), 1e-300)
    assert np.linalg.norm(sharded - serial) / denom <= 1e-12


def test_processes_multi_apply_reuses_arena_across_widths(monkeypatch):
    """Fluctuating batch widths slice one wide arena; growth rebuilds it."""
    monkeypatch.setenv("REPRO_APPLY_MIN_BATCH", "1")
    approach = "expl mkl"
    with Session(SolverSpec(approach=approach, execution="processes:2")) as session:
        operator = session.operator_for(HEAT)
        operator.prepare()
        operator.preprocess()
        n = session.problem(HEAT).n_lambda
        rng = np.random.default_rng(11)
        reference = Session(SolverSpec(approach=approach))
        ref_op = reference.operator_for(HEAT)
        ref_op.prepare()
        ref_op.preprocess()
        states = []
        for k in (2, 5, 3):  # within cap, beyond cap (rebuild), shrink (reuse)
            block = rng.standard_normal((n, k))
            got = operator.apply_multi(block, stacked=True)
            want = ref_op.apply_multi(block, stacked=True)
            denom = max(np.linalg.norm(want), 1e-300)
            assert np.linalg.norm(got - want) / denom <= 1e-12
            batch = operator.batch_engine.cluster(
                next(iter(operator.batch_engine.clusters))
            )
            states.append(getattr(batch.require_dense(), "_process_multi_state", None))
        reference.close()
    assert states[0] is not None
    assert states[1] is not states[0]  # k=5 exceeded the initial cap of 4
    assert states[2] is states[1]  # k=3 sliced the grown arena in place
