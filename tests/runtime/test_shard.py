"""Tests of the shard plan (cluster-respecting worker partitions)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.workload import Workload, build_problem
from repro.cluster.topology import Machine, MachineConfig
from repro.runtime.shard import Shard, ShardPlan


def _plan(clusters, workers):
    return ShardPlan.for_clusters(clusters, workers)


def test_every_subdomain_is_covered_exactly_once():
    plan = _plan([(0, list(range(10))), (1, list(range(10, 16)))], workers=3)
    covered = [i for s in plan.shards for i in s.subdomain_indices]
    assert sorted(covered) == list(range(16))


def test_shards_never_span_clusters():
    plan = _plan([(0, [0, 1, 2]), (1, [3, 4, 5])], workers=2)
    for shard in plan.shards:
        expected = {0, 1, 2} if shard.cluster_id == 0 else {3, 4, 5}
        assert set(shard.subdomain_indices) <= expected


def test_shard_sizes_are_balanced():
    plan = _plan([(0, list(range(10)))], workers=3)
    sizes = sorted(s.size for s in plan.shards)
    assert sizes == [3, 3, 4]


def test_more_workers_than_subdomains_yields_singleton_shards():
    plan = _plan([(0, [0, 1])], workers=8)
    assert plan.n_shards == 2
    assert all(s.size == 1 for s in plan.shards)


def test_one_worker_is_one_shard_per_cluster():
    plan = _plan([(0, [0, 1, 2]), (1, [3, 4])], workers=1)
    assert plan.n_shards == 2
    assert [s.subdomain_indices for s in plan.shards] == [(0, 1, 2), (3, 4)]


def test_positions_are_cluster_local_and_contiguous():
    plan = _plan([(0, [10, 11, 12, 13])], workers=2)
    assert [s.positions for s in plan.shards] == [(0, 1), (2, 3)]


def test_rejects_non_positive_worker_count():
    with pytest.raises(ValueError, match="workers"):
        _plan([(0, [0])], workers=0)


def test_for_problem_uses_the_machine_topology():
    problem = build_problem(Workload("heat", 2, (2, 2), 3, n_clusters=2))
    machine = Machine.for_decomposition(
        problem.decomposition, MachineConfig(threads_per_cluster=2, streams_per_cluster=2)
    )
    plan = ShardPlan.for_problem(problem, machine, workers=2)
    assert {s.cluster_id for s in plan.shards} == {0, 1}
    covered = sorted(i for s in plan.shards for i in s.subdomain_indices)
    assert covered == [s.index for s in problem.subdomains]
    assert "2 worker(s)" in plan.describe()


def test_shard_engine_is_restricted_to_the_shard():
    problem = build_problem(Workload("heat", 2, (2, 2), 3))
    machine = Machine.for_decomposition(
        problem.decomposition, MachineConfig(threads_per_cluster=2, streams_per_cluster=2)
    )
    plan = ShardPlan.for_problem(problem, machine, workers=2)
    shard = plan.shards[0]
    engine = plan.engine_for(shard, problem, machine)
    batch = engine.cluster(shard.cluster_id)
    assert batch.subdomain_indices == list(shard.subdomain_indices)
    # The shard-local dual map covers exactly the shard's lambda ids.
    subs = {s.index: s for s in problem.subdomains}
    expected = np.concatenate([subs[i].lambda_ids for i in shard.subdomain_indices])
    assert np.array_equal(batch.dual_map.flat_ids, expected)


def test_shards_of_cluster_orders_by_position():
    plan = _plan([(0, [0, 1, 2, 3]), (1, [4, 5])], workers=2)
    shards = plan.shards_of_cluster(0)
    assert [s.positions[0] for s in shards] == [0, 2]
    assert all(isinstance(s, Shard) for s in shards)
