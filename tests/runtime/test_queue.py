"""Tests of the concurrent solve queue (the "many users" serving path)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Session, SolverSpec, Workload
from repro.runtime.queue import QueueSolution, SolveQueue

HEAT = Workload("heat", 2, (2, 2), 4)
HEAT_SMALL = Workload("heat", 2, (2, 1), 3)
ELASTICITY = Workload("elasticity", 2, (2, 1), 3)

BACKENDS = [None, "threads:2", "processes:2"]


def _reference(workload, spec=None):
    with Session(SolverSpec.of(spec)) as session:
        return session.solve(workload)


@pytest.mark.parametrize("backend", BACKENDS)
def test_queue_reproduces_direct_session_solves(backend):
    spec = SolverSpec(execution=backend) if backend else SolverSpec()
    with Session(spec) as session:
        queue = session.queue()
        tickets = [queue.submit(w) for w in (HEAT, HEAT_SMALL, ELASTICITY)]
        results = [t.result() for t in tickets]
    for workload, result in zip((HEAT, HEAT_SMALL, ELASTICITY), results):
        assert isinstance(result, QueueSolution)
        reference = _reference(workload)
        assert result.converged
        assert result.iterations == reference.iterations
        np.testing.assert_allclose(result.lam, reference.lam, rtol=1e-9, atol=1e-11)
        for got, ref in zip(result.primal, reference.primal):
            np.testing.assert_allclose(got, ref, rtol=1e-9, atol=1e-11)


@pytest.mark.parametrize("backend", BACKENDS)
def test_scalar_rhs_scales_the_declared_loads(backend):
    spec = SolverSpec(execution=backend) if backend else SolverSpec()
    with Session(spec) as session:
        queue = session.queue()
        base = queue.submit(HEAT).result()
        scaled = queue.submit(HEAT, rhs=2.0).result()
        again = queue.submit(HEAT).result()
    # The dual problem is linear in the loads.
    np.testing.assert_allclose(scaled.lam, 2.0 * base.lam, rtol=1e-6, atol=1e-9)
    # Pristine loads are restored after a scaled request.
    np.testing.assert_allclose(again.lam, base.lam, rtol=0, atol=0)


def test_vector_rhs_replaces_the_loads():
    with Session() as session:
        problem = session.problem(HEAT)
        doubled = [2.0 * sub.f for sub in problem.subdomains]
        queue = session.queue()
        base = queue.submit(HEAT).result()
        custom = queue.submit(HEAT, rhs=doubled).result()
        # Loads restored afterwards.
        for sub, f in zip(problem.subdomains, session.base_loads(HEAT)):
            assert np.array_equal(sub.f, f)
    np.testing.assert_allclose(custom.lam, 2.0 * base.lam, rtol=1e-6, atol=1e-9)


def test_rhs_validation_is_actionable():
    with Session() as session:
        queue = session.queue()
        # submit never raises: the rejection lives in the ticket's future.
        bad_type = queue.submit(HEAT, rhs=object())
        with pytest.raises(TypeError, match="rhs must be"):
            bad_type.result()
        assert bad_type.exception() is not None
        bad_count = queue.submit(HEAT, rhs=[np.zeros(3)])
        with pytest.raises(ValueError, match="load vectors"):
            bad_count.result()


def test_map_preserves_submission_order():
    with Session(SolverSpec(execution="threads:2")) as session:
        queue = session.queue()
        results = queue.map([HEAT, (HEAT_SMALL, None), (HEAT, None, 3.0)])
    assert len(results) == 3
    np.testing.assert_allclose(results[2].lam, 3.0 * results[0].lam, rtol=1e-6, atol=1e-9)


def test_gather_returns_all_tickets_in_order():
    with Session() as session:
        queue = session.queue()
        queue.submit(HEAT)
        queue.submit(HEAT_SMALL)
        results = queue.gather()
    assert len(results) == 2
    assert queue.pending == 0


def test_per_call_spec_override():
    with Session(SolverSpec(approach="impl mkl")) as session:
        queue = session.queue()
        result = queue.submit(HEAT, spec=SolverSpec(approach="expl mkl")).result()
    reference = _reference(HEAT, SolverSpec(approach="expl mkl"))
    np.testing.assert_allclose(result.lam, reference.lam, rtol=1e-9, atol=1e-11)


def test_process_queue_requests_share_warm_worker_sessions():
    """Repeated process requests must not rebuild worker state per call."""
    with Session(SolverSpec(execution="processes:1")) as session:
        queue = session.queue()
        first = queue.submit(HEAT).result()
        second = queue.submit(HEAT).result()
    assert np.array_equal(first.lam, second.lam)


def test_queue_solution_is_picklable():
    import pickle

    with Session() as session:
        result = session.queue().submit(HEAT_SMALL).result()
    clone = pickle.loads(pickle.dumps(result))
    assert np.array_equal(clone.lam, result.lam)
    assert clone.iterations == result.iterations


def test_ndarray_rhs_and_string_rejection():
    """A stacked 2-D array is the natural numpy form of per-subdomain loads."""
    with Session() as session:
        problem = session.problem(HEAT)
        stacked = np.stack([2.0 * sub.f for sub in problem.subdomains])
        queue = session.queue()
        base = queue.submit(HEAT).result()
        custom = queue.submit(HEAT, rhs=stacked).result()
        with pytest.raises(TypeError, match="rhs must be"):
            queue.submit(HEAT, rhs="2.0").result()
    np.testing.assert_allclose(custom.lam, 2.0 * base.lam, rtol=1e-6, atol=1e-9)


@pytest.mark.parametrize("backend", BACKENDS)
def test_poison_request_does_not_stall_or_corrupt_later_requests(backend):
    """Error isolation: a failing request reports through its own ticket only."""
    spec = SolverSpec(execution=backend) if backend else SolverSpec()
    with Session(spec) as session:
        queue = session.queue()
        before = queue.submit(HEAT)
        # Three distinct poison flavours: unresolvable workload (submit-time),
        # bad rhs type (submit-time), bad rhs length (solve-time).
        poison = [
            queue.submit("no-such-preset"),
            queue.submit(HEAT, rhs=object()),
            queue.submit(HEAT, rhs=[np.zeros(3)]),
        ]
        after = queue.submit(HEAT)
        for ticket in poison:
            assert ticket.exception(timeout=60) is not None
            with pytest.raises(Exception):
                ticket.result()
        # Healthy requests bracketing the poison are unaffected and identical.
        np.testing.assert_allclose(
            before.result().lam, after.result().lam, rtol=0, atol=0
        )
        # The session keeps serving new requests after the failures.
        again = queue.submit(HEAT, rhs=2.0).result()
    np.testing.assert_allclose(again.lam, 2.0 * before.result().lam, rtol=1e-6, atol=1e-9)


def test_process_poison_request_fails_parent_side_and_worker_survives():
    """A bad rhs is rejected at drain time in the parent — the original
    exception type reaches the ticket and no worker ever sees the poison."""
    with Session(SolverSpec(execution="processes:1")) as session:
        queue = session.queue()
        bad = queue.submit(HEAT, rhs=[np.zeros(3)])
        exc = bad.exception(timeout=120)
        assert isinstance(exc, ValueError)
        assert "load vectors" in str(exc)
        # The single pool worker is unaffected by the rejected request.
        good = queue.submit(HEAT).result()
        assert good.converged


def test_process_worker_failure_wraps_as_picklable_queue_request_error():
    """Failures that do happen inside a worker re-raise as QueueRequestError
    carrying the traceback text — picklable regardless of the original."""
    import pickle

    from repro.runtime.queue import QueueRequestError, _process_solve

    payload = ({"physics": "no-such-physics"}, SolverSpec().to_dict(), None)
    with pytest.raises(QueueRequestError) as info:
        _process_solve(payload)
    roundtripped = pickle.loads(pickle.dumps(info.value))
    assert isinstance(roundtripped, QueueRequestError)
    assert "no-such-physics" in str(roundtripped) or "physics" in str(roundtripped)


def test_ticket_cancellation():
    """Unstarted requests can be cancelled; cancelled tickets report it."""
    with Session(SolverSpec(execution="threads:1")) as session:
        queue = session.queue()
        tickets = [queue.submit(HEAT_SMALL) for _ in range(6)]
        cancelled = [t for t in tickets if t.cancel()]
        for t in tickets:
            if t.cancelled:
                assert t.done
            else:
                assert t.result(timeout=120).converged
        # Cancellation is best-effort: at least the queue stayed consistent.
        assert len(cancelled) == sum(1 for t in tickets if t.cancelled)


def test_stale_marker_survives_a_failing_solve():
    """A failed solve must not clear the stale flag (regression: the flag
    was dropped before the solve ran, so a later solve would reuse a
    factorization of mutated stiffness values)."""

    with Session() as session:
        baseline = session.solve(HEAT_SMALL).lam.copy()

        def harden(step, problem):
            for sub in problem.subdomains:
                sub.K_reg = sub.K_reg * 2.0
                sub.K = sub.K * 2.0

        session.run_steps(HEAT_SMALL, update=harden)
        # The schedule marked the solver stale.  Sabotage the next solve.
        solver = session.solver(HEAT_SMALL)
        original = solver.preprocess
        def boom():
            raise RuntimeError("injected preprocessing failure")
        solver.preprocess = boom
        with pytest.raises(RuntimeError, match="injected"):
            session.solve(HEAT_SMALL)
        solver.preprocess = original
        # The retry still re-runs preprocessing (stale flag intact) and
        # reproduces the pristine baseline.
        recovered = session.solve(HEAT_SMALL)
    np.testing.assert_allclose(recovered.lam, baseline, rtol=1e-9, atol=1e-11)


def test_two_queues_share_the_session_workload_lock():
    """Requests from separate queues must serialize on one workload.

    Each request solves under a different load scaling; any interleaving of
    the load mutation/restore across queues would break the exact linearity
    of the results.
    """
    from concurrent.futures import ThreadPoolExecutor

    with Session(SolverSpec(approach="expl mkl", execution="threads:2")) as session:
        base = session.queue().submit(HEAT).result()
        queues = [session.queue(), session.queue()]

        def request(k: int):
            scale = 1.0 + 0.5 * k
            return scale, queues[k % 2].submit(HEAT, rhs=scale).result()

        with ThreadPoolExecutor(max_workers=4) as pool:
            results = list(pool.map(request, range(8)))
        # Direct session.solve traffic interleaves safely too.
        direct = session.solve(HEAT)
    np.testing.assert_allclose(direct.lam, base.lam, rtol=0, atol=0)
    for scale, result in results:
        np.testing.assert_allclose(
            result.lam, scale * base.lam, rtol=1e-6, atol=1e-9
        )


# --------------------------------------------------------------------- #
# Coalescing                                                             #
# --------------------------------------------------------------------- #
def test_same_pattern_requests_coalesce_into_one_stacked_solve():
    """K same-(workload, spec) requests queued behind a held workload lock
    drain as one multi-RHS block solve."""
    with Session() as session:
        queue = session.queue()
        reference = queue.submit(HEAT).result()
        before = session.stats.stacked_solves
        lock = session.workload_lock(HEAT)
        lock.acquire()
        try:
            import threading

            tickets = []
            threads = [
                threading.Thread(
                    target=lambda s=s: tickets.append((s, queue.submit(HEAT, rhs=s)))
                )
                for s in (1.0, 2.0, 3.0)
            ]
            for t in threads:
                t.start()
            # Submitters are serial-backend: each blocks inside its own
            # drain, waiting on the workload lock we hold.
            deadline = 50
            while queue.pending < 3 and deadline:
                import time

                time.sleep(0.05)
                deadline -= 1
        finally:
            lock.release()
        for t in threads:
            t.join(timeout=120)
        pairs = [(scale, ticket.result(timeout=120)) for scale, ticket in tickets]
        assert session.stats.stacked_solves == before + 1
        assert session.stats.stacked_columns == 3
        assert queue.coalesced_batches == 1
    for scale, result in pairs:
        assert result.converged
        np.testing.assert_allclose(
            result.lam, scale * reference.lam, rtol=1e-6, atol=1e-9
        )


def test_distinct_patterns_do_not_coalesce():
    with Session() as session:
        queue = session.queue()
        queue.submit(HEAT).result()
        queue.submit(ELASTICITY).result()
        queue.submit(HEAT, rhs=2.0).result()
        assert session.stats.stacked_solves == 0
        assert queue.coalesced_batches == 0


def test_failing_column_fails_only_its_own_ticket_in_a_batch():
    """A bad rhs inside a coalesced batch is rejected parent-side: its
    ticket carries the original ValueError, the rest of the batch solves."""
    import threading

    with Session() as session:
        queue = session.queue()
        reference = queue.submit(HEAT).result()
        lock = session.workload_lock(HEAT)
        lock.acquire()
        tickets = []
        try:
            payloads = [2.0, [np.zeros(3)], 3.0]
            threads = [
                threading.Thread(
                    target=lambda r=r: tickets.append(queue.submit(HEAT, rhs=r))
                )
                for r in payloads
            ]
            for t in threads:
                t.start()
            deadline = 50
            while queue.pending < 3 and deadline:
                import time

                time.sleep(0.05)
                deadline -= 1
        finally:
            lock.release()
        for t in threads:
            t.join(timeout=120)
        by_exception = [t for t in tickets if t.exception(timeout=120) is not None]
        assert len(by_exception) == 1
        assert isinstance(by_exception[0].exception(), ValueError)
        good = [t for t in tickets if t.exception() is None]
        assert len(good) == 2
        for t in good:
            assert t.result().converged


@pytest.mark.parametrize("backend", ["threads:2", "processes:2"])
def test_coalesced_batches_match_sequential_results(backend):
    """Whatever batching the drain races produce, every ticket's solution
    must match its own sequential reference."""
    with Session(SolverSpec(execution=backend)) as session:
        queue = session.queue()
        base = queue.submit(HEAT).result()
        tickets = [queue.submit(HEAT, rhs=float(s)) for s in (1.0, 2.0, 3.0, 4.0)]
        results = [t.result(timeout=300) for t in tickets]
        queue.close()
    for scale, result in zip((1.0, 2.0, 3.0, 4.0), results):
        assert result.converged
        np.testing.assert_allclose(
            result.lam, scale * base.lam, rtol=1e-6, atol=1e-9
        )
