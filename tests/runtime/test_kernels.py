"""Tests of the batched shard kernels against the per-subdomain references."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.api.workload import Workload, build_problem
from repro.runtime.kernels import (
    batched_factor_panels,
    batched_schur_complements,
    csr_to_csc_map,
    factor_from_panels,
    padded_dual_rhs,
)
from repro.sparse.numeric import NotPositiveDefiniteError, numeric_cholesky
from repro.sparse.schur import schur_complement
from repro.sparse.symbolic import symbolic_cholesky


@pytest.fixture(scope="module")
def heat_group():
    """All 64 same-pattern subdomains of the 8x8 heat workload."""
    problem = build_problem(Workload("heat", 2, (8, 8), 8))
    subs = problem.subdomains
    base = sp.csr_matrix(subs[0].K_reg)
    symbolic = symbolic_cholesky(base, supernodes=True)
    cmap = csr_to_csc_map(base)
    data = np.stack([np.asarray(s.K_reg.data) for s in subs])[:, cmap]
    return subs, symbolic, data


def test_csr_to_csc_map_reproduces_scipy_conversion():
    rng = np.random.default_rng(7)
    A = sp.random(12, 12, density=0.3, random_state=rng, format="csr")
    A.sort_indices()
    cmap = csr_to_csc_map(A)
    assert np.array_equal(A.data[cmap], A.tocsc().data)


def test_batched_factor_matches_serial_bitwise(heat_group):
    subs, symbolic, data = heat_group
    panels = batched_factor_panels(data, symbolic)
    for i, sub in enumerate(subs):
        ref = numeric_cholesky(sub.K_reg, symbolic)
        got = factor_from_panels(symbolic, panels[i])
        assert np.array_equal(got.values, ref.values)
        # The panel slice is adopted zero-copy as the dense-panel storage.
        assert np.shares_memory(got.panel_values(), panels)


def test_batched_factor_requires_supernodal_analysis(heat_group):
    subs, _, data = heat_group
    scalar = symbolic_cholesky(sp.csr_matrix(subs[0].K_reg), supernodes=False)
    with pytest.raises(ValueError, match="supernodal"):
        batched_factor_panels(data, scalar)


def test_batched_factor_raises_on_non_spd_member(heat_group):
    subs, symbolic, data = heat_group
    bad = data.copy()
    bad[3] = -bad[3]
    with pytest.raises(NotPositiveDefiniteError, match="matrix 3"):
        batched_factor_panels(bad, symbolic)


def test_padded_dual_rhs_matches_the_serial_permuted_rhs(heat_group):
    subs, symbolic, _ = heat_group
    width = max(s.n_lambda for s in subs)
    rhs = padded_dual_rhs([s.B for s in subs[:5]], symbolic.perm, width)
    for i, sub in enumerate(subs[:5]):
        dense = np.asarray(sp.csr_matrix(sub.B)[:, symbolic.perm].todense()).T
        assert np.array_equal(rhs[i, :, : sub.n_lambda], dense)
        assert np.all(rhs[i, :, sub.n_lambda :] == 0.0)


def test_batched_schur_matches_serial_to_machine_rounding(heat_group):
    subs, symbolic, data = heat_group
    panels = batched_factor_panels(data, symbolic)
    width = max(s.n_lambda for s in subs)
    rhs = padded_dual_rhs([s.B for s in subs], symbolic.perm, width)
    F = batched_schur_complements(symbolic, panels, rhs)
    for i, sub in enumerate(subs):
        ref_factor = numeric_cholesky(sub.K_reg, symbolic)
        for exploit in (True, False):
            ref = schur_complement(ref_factor, sub.B, exploit_rhs_sparsity=exploit)
            np.testing.assert_allclose(
                F[i, : sub.n_lambda, : sub.n_lambda], ref, rtol=1e-12, atol=1e-14
            )
        # Padding lanes stay exactly zero.
        assert np.all(F[i, sub.n_lambda :, :] == 0.0)
        assert np.all(F[i, :, sub.n_lambda :] == 0.0)


def test_batched_stack_of_one_equals_the_single_matrix_path(heat_group):
    subs, symbolic, data = heat_group
    panels = batched_factor_panels(data[:1], symbolic)
    ref = numeric_cholesky(subs[0].K_reg, symbolic)
    assert np.array_equal(factor_from_panels(symbolic, panels[0]).values, ref.values)


def test_batched_schur_requires_a_partition(heat_group):
    subs, _, data = heat_group
    scalar = symbolic_cholesky(sp.csr_matrix(subs[0].K_reg), supernodes=False)
    with pytest.raises(ValueError, match="supernode"):
        batched_schur_complements(scalar, np.zeros((1, 4)), np.zeros((1, 4, 2)))
