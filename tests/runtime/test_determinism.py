"""Determinism of the parallel runtime (the acceptance gate of the PR).

Every executor backend must reproduce the serial solution for all nine
dual-operator approaches: the two parallel backends run literally the same
sharded kernels (so they are bitwise identical to *each other*), and both
must match the serial reference bitwise or to a tight tolerance — the only
permitted deviation is machine rounding from the padded batched Schur
kernels, orders of magnitude below the solver tolerance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Session, SolverSpec, Workload
from repro.api.workload import build_problem
from repro.feti.config import DualOperatorApproach
from repro.feti.solver import FetiSolver
from repro.runtime.executor import shared_executor

WORKLOADS = {
    "heat-2d": Workload("heat", 2, (2, 2), 4),
    "elasticity-3d": Workload("elasticity", 3, (2, 1, 1), 2),
}

#: Bitwise where possible; the batched Schur assembly may differ by machine
#: rounding (~1e-15 per entry), amplified through the PCPG iteration.
TIGHT = dict(rtol=1e-9, atol=1e-11)


def _solve(approach, workload, backend=None):
    """One solve through a fresh solver; pools are shared process-wide.

    ``shared_executor`` reuses one worker pool per backend across the whole
    parametrized sweep — the sweep then measures determinism, not pool
    start-up, and stays fast on small CI runners.
    """
    executor = shared_executor(backend) if backend else None
    solver = FetiSolver(
        build_problem(workload), SolverSpec(approach=approach), executor=executor
    )
    return solver.solve()


@pytest.fixture(scope="module")
def serial_solutions():
    """Serial reference solutions of every (approach, workload) pair."""
    return {
        (approach, wname): _solve(approach, workload)
        for wname, workload in WORKLOADS.items()
        for approach in DualOperatorApproach
    }


@pytest.mark.parametrize("backend", ["threads:2", "processes:2"])
@pytest.mark.parametrize("wname", sorted(WORKLOADS))
@pytest.mark.parametrize("approach", list(DualOperatorApproach))
def test_parallel_executors_reproduce_serial_solutions(
    approach, wname, backend, serial_solutions
):
    workload = WORKLOADS[wname]
    solution = _solve(approach, workload, backend)
    reference = serial_solutions[(approach, wname)]

    assert solution.iterations == reference.iterations
    assert solution.converged and reference.converged
    np.testing.assert_allclose(solution.lam, reference.lam, **TIGHT)
    np.testing.assert_allclose(solution.alpha, reference.alpha, **TIGHT)
    for got, ref in zip(solution.primal, reference.primal):
        np.testing.assert_allclose(got, ref, **TIGHT)
    # The simulated-time semantics are exactly the serial ones: sharding
    # changes wall-clock execution, never the modeled machine.
    assert (
        solution.preprocessing.simulated_seconds
        == reference.preprocessing.simulated_seconds
    )
    assert solution.dual_apply_seconds == reference.dual_apply_seconds


@pytest.mark.parametrize("wname", sorted(WORKLOADS))
def test_threads_and_processes_are_bitwise_identical(wname):
    """The two parallel backends run the same kernels on the same shards."""
    workload = WORKLOADS[wname]
    solutions = {
        backend: _solve(DualOperatorApproach.EXPLICIT_MKL, workload, backend)
        for backend in ("threads:2", "processes:2")
    }
    a, b = solutions["threads:2"], solutions["processes:2"]
    assert np.array_equal(a.lam, b.lam)
    assert np.array_equal(a.alpha, b.alpha)
    for ga, gb in zip(a.primal, b.primal):
        assert np.array_equal(ga, gb)


def test_repeated_parallel_preprocessing_is_stable():
    """Re-running preprocess on the same operator reproduces the factors."""
    workload = WORKLOADS["heat-2d"]
    solver = FetiSolver(
        build_problem(workload),
        SolverSpec(approach=DualOperatorApproach.EXPLICIT_MKL),
        executor=shared_executor("processes:2"),
    )
    operator = solver.operator
    operator.prepare()
    operator.preprocess()
    first = {i: operator.local_F[i].copy() for i in sorted(operator.local_F)}
    operator.preprocess()
    for i, F in first.items():
        assert np.array_equal(operator.local_F[i], F)


def test_session_declared_execution_reproduces_serial(serial_solutions):
    """The Session path (spec-declared execution) matches serial too."""
    workload = WORKLOADS["heat-2d"]
    approach = DualOperatorApproach.EXPLICIT_MKL
    with Session(SolverSpec(approach=approach, execution="processes:2")) as session:
        solution = session.solve(workload)
    reference = serial_solutions[(approach, "heat-2d")]
    np.testing.assert_allclose(solution.lam, reference.lam, **TIGHT)


def test_symbolic_is_shipped_once_per_pattern_per_executor():
    """Multi-round preprocessing re-sends only the analysis digest."""
    workload = WORKLOADS["heat-2d"]
    executor = shared_executor("processes:2")
    solver = FetiSolver(
        build_problem(workload),
        SolverSpec(approach=DualOperatorApproach.EXPLICIT_MKL),
        executor=executor,
    )
    operator = solver.operator
    operator.prepare()
    operator.preprocess()
    seeded = set(executor.seeded_keys)
    assert seeded  # the first round seeded the workers
    first = {i: operator.local_F[i].copy() for i in sorted(operator.local_F)}
    operator.preprocess()  # second round ships digests only
    assert executor.seeded_keys >= seeded
    for i, F in first.items():
        assert np.array_equal(operator.local_F[i], F)
