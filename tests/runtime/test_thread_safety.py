"""Hammer tests: the shared caches under concurrent access (satellite 1)."""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest
import scipy.sparse as sp

from repro.api import Session, SolverSpec, Workload
from repro.sparse.cache import PatternCache, structural_key


def _laplacian(n: int, shift: int = 0) -> sp.csr_matrix:
    """A 1-D Laplacian-ish SPD matrix; ``shift`` varies the pattern."""
    main = 4.0 * np.ones(n)
    off = -1.0 * np.ones(n - 1)
    A = sp.diags([off, main, off], [-1, 0, 1], format="lil")
    if shift:
        A[0, min(n - 1, 2 + shift)] = -0.5
        A[min(n - 1, 2 + shift), 0] = -0.5
    return sp.csr_matrix(A)


def test_pattern_cache_hammer_many_threads_one_analysis_per_pattern():
    cache = PatternCache()
    patterns = [_laplacian(40, s) for s in range(4)]
    n_threads, rounds = 16, 25
    barrier = threading.Barrier(n_threads)
    results: list[list] = [[] for _ in range(n_threads)]

    def hammer(tid: int) -> None:
        barrier.wait()
        for r in range(rounds):
            A = patterns[(tid + r) % len(patterns)]
            results[tid].append((structural_key(A), cache.symbolic_for(A)))

    with ThreadPoolExecutor(max_workers=n_threads) as pool:
        list(pool.map(hammer, range(n_threads)))

    # Every thread got a structurally identical analysis per pattern.  (The
    # cache deliberately computes outside the lock, so the first concurrent
    # misses may each build their own — equal — object; afterwards one
    # cached instance serves everyone.)
    by_pattern: dict = {}
    for thread_results in results:
        for key, symbolic in thread_results:
            by_pattern.setdefault(key, []).append(symbolic)
    assert len(by_pattern) == len(patterns)
    for group in by_pattern.values():
        ref = group[0]
        for symbolic in group[1:]:
            assert symbolic.n == ref.n
            assert np.array_equal(symbolic.perm, ref.perm)
            assert np.array_equal(symbolic.col_ptr, ref.col_ptr)
            assert np.array_equal(symbolic.row_idx, ref.row_idx)
    assert cache.hits + cache.misses == n_threads * rounds
    assert len(cache) == len(patterns)
    # The race window between lookup and insert may compute a pattern more
    # than once, but the count stays bounded by threads x patterns (no
    # corruption-driven repeated misses).
    assert cache.misses <= len(patterns) * n_threads
    # Steady state: one cached instance per pattern serves all new lookups.
    for A in patterns:
        assert cache.symbolic_for(A) is cache.symbolic_for(A)


def test_pattern_cache_lock_is_reentrant():
    cache = PatternCache()
    with cache._lock:
        cache.symbolic_for(_laplacian(10))
    assert len(cache) == 1


def test_session_caches_survive_concurrent_solves():
    """Concurrent solves on one session: no corruption, no double builds.

    The execution backend is pinned to ``threads`` so the requests exercise
    the *shared* session caches regardless of the ``REPRO_EXECUTOR``
    environment (the process backend would solve in worker sessions).
    """
    session = Session(SolverSpec(approach="expl mkl", execution="threads:2"))
    workloads = [
        Workload("heat", 2, (2, 2), 4),
        Workload("heat", 2, (2, 1), 3),
        Workload("elasticity", 2, (2, 1), 3),
    ]
    n_threads, rounds = 8, 4
    barrier = threading.Barrier(n_threads)
    errors: list[BaseException] = []
    lam_norms: dict[Workload, set[float]] = {w: set() for w in workloads}
    norms_lock = threading.Lock()
    queue = session.queue()  # one queue: its per-workload locks serialize

    def hammer(tid: int) -> None:
        try:
            barrier.wait()
            for r in range(rounds):
                w = workloads[(tid + r) % len(workloads)]
                queue_result = queue.submit(w).result()
                with norms_lock:
                    lam_norms[w].add(float(np.linalg.norm(queue_result.lam)))
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    with ThreadPoolExecutor(max_workers=n_threads) as pool:
        list(pool.map(hammer, range(n_threads)))
    session.close()

    assert not errors
    # Every workload produced exactly one (deterministic) solution.
    for w, norms in lam_norms.items():
        assert len(norms) == 1
    stats = session.cache_stats()
    assert stats["problems"] == len(workloads)
    # One prepared solver per workload (the session spec is shared).
    assert stats["solvers"] == len(workloads)


def test_closed_session_refuses_new_executors():
    session = Session()
    session.close()
    with pytest.raises(RuntimeError, match="closed"):
        session.executor()
