"""Tests of the execution backends and their declarative spec."""

from __future__ import annotations

import functools
import operator
import os

import pytest

from repro.runtime.executor import (
    BACKENDS,
    ExecutionError,
    ExecutionSpec,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    default_execution,
    make_executor,
)


# The process backend may start workers through a forkserver (fresh
# interpreters), which can only unpickle functions from importable modules —
# so the tasks shipped across backends are stdlib callables.
_double = functools.partial(operator.mul, 2)


class TestExecutionSpec:
    def test_defaults_are_serial_single_worker(self):
        spec = ExecutionSpec()
        assert spec.backend == "serial"
        assert spec.workers == 1
        assert not spec.parallel

    @pytest.mark.parametrize("workers", [0, -1, -100])
    def test_rejects_non_positive_workers_with_actionable_error(self, workers):
        with pytest.raises(ExecutionError, match="zero or negative"):
            ExecutionSpec("threads", workers)

    @pytest.mark.parametrize("workers", [1.5, "two", None])
    def test_rejects_non_integer_workers(self, workers):
        with pytest.raises(ExecutionError):
            ExecutionSpec("processes", workers)

    def test_rejects_unknown_backend_listing_the_valid_ones(self):
        with pytest.raises(ExecutionError) as err:
            ExecutionSpec("cuda", 2)
        for backend in BACKENDS:
            assert backend in str(err.value)

    def test_serial_backend_rejects_worker_pools(self):
        with pytest.raises(ExecutionError, match="serial"):
            ExecutionSpec("serial", 4)

    def test_of_parses_backend_strings_with_worker_suffix(self):
        assert ExecutionSpec.of("threads:3") == ExecutionSpec("threads", 3)
        assert ExecutionSpec.of("processes").backend == "processes"
        assert ExecutionSpec.of(None) == ExecutionSpec()
        spec = ExecutionSpec("processes", 2)
        assert ExecutionSpec.of(spec) is spec

    def test_of_rejects_unknown_mapping_fields(self):
        with pytest.raises(ExecutionError, match="unknown execution field"):
            ExecutionSpec.of({"backend": "threads", "pool_size": 4})

    def test_dict_round_trip(self):
        spec = ExecutionSpec("processes", 4)
        assert ExecutionSpec.of(spec.to_dict()) == spec

    def test_describe_short_form(self):
        assert ExecutionSpec().describe() == "serial"
        assert ExecutionSpec("processes", 4).describe() == "processes4"


class TestEnvironmentDefault:
    def test_unset_environment_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert default_execution() == ExecutionSpec()

    def test_env_selects_backend_and_workers(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "threads")
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert default_execution() == ExecutionSpec("threads", 3)

    def test_env_workers_default_to_cpu_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "processes")
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        spec = default_execution()
        assert spec.backend == "processes"
        assert spec.workers == max(1, os.cpu_count() or 1)

    def test_invalid_env_backend_raises_actionably(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "gpu")
        with pytest.raises(ExecutionError, match="REPRO_EXECUTOR"):
            default_execution()


class TestExecutors:
    def test_factory_builds_the_matching_backend(self):
        assert isinstance(make_executor(None), SerialExecutor)
        with make_executor("threads:2") as ex:
            assert isinstance(ex, ThreadExecutor)
        with make_executor("processes:2") as ex:
            assert isinstance(ex, ProcessExecutor)

    @pytest.mark.parametrize("backend", [None, "threads:2", "processes:2"])
    def test_submit_and_map_round_trip(self, backend):
        with make_executor(backend) as ex:
            assert ex.submit(_double, 21).result() == 42
            assert ex.map_tasks(_double, [1, 2, 3]) == [2, 4, 6]

    def test_serial_submit_captures_exceptions_in_the_future(self):
        ex = SerialExecutor()
        future = ex.submit(_raise)
        with pytest.raises(RuntimeError, match="boom"):
            future.result()

    def test_submit_after_close_raises(self):
        ex = make_executor("threads:2")
        ex.close()
        with pytest.raises(RuntimeError, match="closed"):
            ex.submit(_double, 1)

    def test_close_is_idempotent(self):
        ex = make_executor("processes:2")
        ex.warm()
        ex.close()
        ex.close()

    def test_process_warm_starts_the_pool_before_first_task(self):
        with make_executor("processes:2") as ex:
            ex.warm()
            assert ex._pool is not None
            assert ex.map_tasks(_double, [5]) == [10]


def _raise():
    raise RuntimeError("boom")


def test_thread_executor_reentrant_submit_runs_inline():
    """A pool worker submitting to its own pool must not starve itself.

    This is how a queued solve's nested preprocessing shards stay safe even
    when requests and shards share one executor: re-entrant submissions run
    inline instead of queueing behind their blocked parent.
    """
    with make_executor("threads:1") as ex:

        def nested():
            # With one worker, waiting on an enqueued task here would
            # deadlock; the inline path completes it immediately.
            return ex.submit(_double, 4).result()

        assert ex.submit(nested).result() == 8
