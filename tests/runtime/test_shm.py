"""Tests of the shared-memory arena transport."""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime.executor import make_executor
from repro.runtime.shm import SharedArena, attach_view, fill_slot, write_slot


def test_layout_offsets_are_contiguous_and_sized():
    arena = SharedArena()
    a = arena.allocate((4, 3))
    b = arena.allocate((5,))
    assert a.offset == 0 and a.size == 12
    assert b.offset == 8 * 12 and b.size == 5
    assert arena.nbytes == 8 * 17


def test_typed_slots_round_trip_and_stay_aligned():
    arena = SharedArena()
    ints = arena.allocate((5,), dtype=np.int32)  # 20 bytes -> padded to 24
    floats = arena.allocate((2, 2))
    assert ints.dtype == "int32" and ints.nbytes == 20
    assert floats.offset == 24 and floats.offset % 8 == 0
    arena.create()
    try:
        arena.write(ints, np.arange(5, dtype=np.int32))
        arena.write(floats, np.full((2, 2), 0.5))
        assert arena.view(ints).dtype == np.int32
        assert np.array_equal(arena.view(ints), np.arange(5))
        assert np.array_equal(arena.view(floats), np.full((2, 2), 0.5))
    finally:
        arena.release()


def test_allocate_of_matches_array_shape_and_dtype():
    arena = SharedArena()
    source = np.arange(12, dtype=np.int64).reshape(3, 4)
    slot = arena.allocate_of(source)
    assert slot.shape == (3, 4) and slot.dtype == "int64"
    arena.create()
    try:
        arena.write(slot, source)
        assert np.array_equal(arena.view(slot), source)
    finally:
        arena.release()


def test_parent_write_and_view_round_trip():
    arena = SharedArena()
    slot = arena.allocate((3, 3))
    arena.create()
    values = np.arange(9.0).reshape(3, 3)
    arena.write(slot, values)
    assert np.array_equal(arena.view(slot), values)
    arena.release()


def test_layout_freezes_after_create():
    arena = SharedArena()
    arena.allocate((2,))
    arena.create()
    with pytest.raises(RuntimeError, match="frozen"):
        arena.allocate((2,))
    arena.release()


def test_view_before_create_raises():
    arena = SharedArena()
    slot = arena.allocate((2,))
    with pytest.raises(RuntimeError, match="create"):
        arena.view(slot)


def test_release_is_idempotent_and_frees_the_name():
    arena = SharedArena()
    slot = arena.allocate((2,))
    arena.create()
    name = arena.name
    arena.release()
    arena.release()
    from multiprocessing import shared_memory

    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=name)
    with pytest.raises(RuntimeError):
        arena.view(slot)


def test_in_process_attach_and_write_round_trip():
    arena = SharedArena()
    slot = arena.allocate((3,))
    arena.create()
    try:
        shm, buf = attach_view(arena.name)
        try:
            write_slot(buf, slot, np.array([1.0, 2.0, 3.0]))
        finally:
            shm.close()
        assert np.array_equal(arena.view(slot), [1.0, 2.0, 3.0])
    finally:
        arena.release()


def test_worker_process_writes_are_visible_to_the_parent():
    arena = SharedArena()
    slot = arena.allocate((4, 2))
    arena.create()
    try:
        with make_executor("processes:1") as ex:
            assert ex.submit(fill_slot, arena.name, slot, 7.5).result()
        assert np.array_equal(arena.view(slot), np.full((4, 2), 7.5))
    finally:
        arena.release()


def test_arena_slots_are_zero_initialized():
    arena = SharedArena()
    slot = arena.allocate((8,))
    arena.create()
    try:
        assert np.array_equal(arena.view(slot), np.zeros(8))
    finally:
        arena.release()
