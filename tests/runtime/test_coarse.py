"""Tests of the sharded coarse-problem products (repro.runtime.coarse)."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.runtime.coarse import ShardedCsr, min_coarse_rows
from repro.runtime.executor import ExecutionSpec, make_executor


@pytest.fixture()
def matrix():
    rng = np.random.default_rng(31)
    dense = rng.standard_normal((40, 12))
    dense[np.abs(dense) < 1.0] = 0.0  # sparsify
    return sp.csr_matrix(dense)


def test_min_coarse_rows_env_override(monkeypatch):
    assert min_coarse_rows() == 256
    monkeypatch.setenv("REPRO_COARSE_MIN_ROWS", "7")
    assert min_coarse_rows() == 7
    monkeypatch.setenv("REPRO_COARSE_MIN_ROWS", "not-a-number")
    assert min_coarse_rows() == 256


def test_serial_matvec_matches_scipy(matrix):
    x = np.arange(matrix.shape[1], dtype=float)
    sharded = ShardedCsr(matrix)
    assert np.array_equal(sharded.matvec(x), matrix @ x)
    assert np.array_equal(sharded.matvec(x, None), matrix @ x)


def test_small_matrices_fall_through_to_serial(matrix, monkeypatch):
    # 40 rows < the 256-row default floor: the executor must not be used.
    class ExplodingExecutor:
        backend = "threads"
        workers = 4

        def submit(self, fn, *args, **kwargs):  # pragma: no cover
            raise AssertionError("small product must not be sharded")

    x = np.ones(matrix.shape[1])
    sharded = ShardedCsr(matrix)
    assert np.array_equal(sharded.matvec(x, ExplodingExecutor()), matrix @ x)


def test_threads_matvec_is_bitwise_serial(matrix, monkeypatch):
    monkeypatch.setenv("REPRO_COARSE_MIN_ROWS", "1")
    x = np.linspace(-1.0, 1.0, matrix.shape[1])
    sharded = ShardedCsr(matrix)
    with make_executor(ExecutionSpec("threads", 4)) as executor:
        assert np.array_equal(sharded.matvec(x, executor), matrix @ x)
        X = np.column_stack([x, 2.0 * x, -x])
        assert np.array_equal(sharded.matmat(X, executor), (matrix @ X))


def test_process_matvec_is_bitwise_serial(matrix, monkeypatch):
    monkeypatch.setenv("REPRO_COARSE_MIN_ROWS", "1")
    x = np.linspace(0.0, 2.0, matrix.shape[1])
    sharded = ShardedCsr(matrix)
    with make_executor(ExecutionSpec("processes", 2)) as executor:
        assert np.array_equal(sharded.matvec(x, executor), matrix @ x)


def test_empty_matrix_products(monkeypatch):
    monkeypatch.setenv("REPRO_COARSE_MIN_ROWS", "1")
    empty = sp.csr_matrix((8, 3))
    sharded = ShardedCsr(empty)
    x = np.ones(3)
    with make_executor(ExecutionSpec("threads", 2)) as executor:
        assert np.array_equal(sharded.matvec(x, executor), np.zeros(8))
