"""Tests of the serve wire protocol: parsing, keys, payloads."""

import json

import numpy as np
import pytest

from repro.api import SCHEMA_VERSION, SolverSpec, Workload
from repro.runtime.queue import QueueSolution
from repro.serve.protocol import (
    ProtocolError,
    parse_solve_request,
    pattern_key,
    request_fingerprint,
    solution_payload,
)


def _body(**fields) -> bytes:
    return json.dumps(fields).encode("utf-8")


# --------------------------------------------------------------------- #
# Parsing                                                                #
# --------------------------------------------------------------------- #
def test_parse_accepts_preset_names_and_dicts():
    request = parse_solve_request(_body(workload="heat-2d-quick", spec="cpu-explicit"))
    assert request.workload == Workload.from_preset("heat-2d-quick")
    assert request.spec == SolverSpec.from_preset("cpu-explicit")
    assert request.rhs is None and request.timeout is None

    inline = parse_solve_request(
        _body(
            workload=Workload("heat", 2, (2, 1), 3).to_dict(),
            spec={"approach": "expl mkl"},
            rhs=2.5,
        )
    )
    assert inline.workload.subdomains == (2, 1)
    assert inline.rhs == 2.5


def test_parse_requires_a_workload():
    with pytest.raises(ProtocolError, match="missing the required 'workload'"):
        parse_solve_request(_body(spec="cpu-explicit"))


def test_parse_rejects_non_json_and_non_objects():
    with pytest.raises(ProtocolError, match="not valid JSON"):
        parse_solve_request(b"{nope")
    with pytest.raises(ProtocolError, match="must be a JSON object"):
        parse_solve_request(b"[1, 2]")
    with pytest.raises(ProtocolError, match="not valid UTF-8"):
        parse_solve_request(b"\xff\xfe")


def test_parse_rejects_unknown_fields_actionably():
    with pytest.raises(ProtocolError, match="unknown request field.*workloads"):
        parse_solve_request(_body(workloads="heat-2d-quick"))


def test_parse_checks_the_schema_version():
    ok = parse_solve_request(_body(schema_version=SCHEMA_VERSION, workload="heat-2d-quick"))
    assert ok.workload.physics == "heat"
    with pytest.raises(ProtocolError, match="schema_version 999"):
        parse_solve_request(_body(schema_version=999, workload="heat-2d-quick"))


def test_parse_reports_unknown_presets():
    with pytest.raises(ProtocolError, match="invalid workload.*registered presets"):
        parse_solve_request(_body(workload="no-such-preset"))
    with pytest.raises(ProtocolError, match="invalid spec"):
        parse_solve_request(_body(workload="heat-2d-quick", spec="no-such-spec"))


def test_parse_normalizes_rhs_variants():
    scalar = parse_solve_request(_body(workload="heat-2d-quick", rhs=3))
    assert scalar.rhs == 3.0 and isinstance(scalar.rhs, float)
    vectors = parse_solve_request(_body(workload="heat-2d-quick", rhs=[[1, 2], [3, 4]]))
    assert vectors.rhs == [[1.0, 2.0], [3.0, 4.0]]
    with pytest.raises(ProtocolError, match="rhs"):
        parse_solve_request(_body(workload="heat-2d-quick", rhs=True))
    with pytest.raises(ProtocolError, match="rhs"):
        parse_solve_request(_body(workload="heat-2d-quick", rhs="big"))
    with pytest.raises(ProtocolError, match="rhs"):
        parse_solve_request(_body(workload="heat-2d-quick", rhs=[["x"]]))


def test_parse_validates_the_timeout():
    ok = parse_solve_request(_body(workload="heat-2d-quick", timeout=1.5))
    assert ok.timeout == 1.5
    with pytest.raises(ProtocolError, match="timeout must be positive"):
        parse_solve_request(_body(workload="heat-2d-quick", timeout=0))
    with pytest.raises(ProtocolError, match="timeout must be a number"):
        parse_solve_request(_body(workload="heat-2d-quick", timeout="fast"))


# --------------------------------------------------------------------- #
# Keys                                                                   #
# --------------------------------------------------------------------- #
def test_pattern_key_ignores_material_and_schedule():
    base = Workload.from_preset("heat-2d-quick")
    harder = Workload.from_dict({**base.to_dict(), "material": {"conductivity": 7.0}})
    assert pattern_key(base) == pattern_key(harder)
    coarser = Workload.from_dict({**base.to_dict(), "cells": base.cells + 1})
    assert pattern_key(base) != pattern_key(coarser)


def test_request_fingerprint_is_content_addressed():
    w = Workload.from_preset("heat-2d-quick")
    s = SolverSpec.from_preset("cpu-explicit")
    assert request_fingerprint(w, s, 2.0) == request_fingerprint(w, s, 2.0)
    assert request_fingerprint(w, s, 2.0) != request_fingerprint(w, s, 3.0)
    assert request_fingerprint(w, s, None) != request_fingerprint(w, s, 1.0)
    other_spec = SolverSpec.from_preset("cpu-implicit")
    assert request_fingerprint(w, s, 2.0) != request_fingerprint(w, other_spec, 2.0)


# --------------------------------------------------------------------- #
# Payloads                                                               #
# --------------------------------------------------------------------- #
def _solution() -> QueueSolution:
    return QueueSolution(
        lam=np.array([1.0, 2.0]),
        alpha=np.array([0.5]),
        primal=[np.array([1.0, 1.0]), np.array([2.0, 2.0])],
        iterations=7,
        converged=True,
        preprocessing_seconds=0.25,
        dual_apply_seconds=0.125,
    )


def test_solution_payload_is_json_serializable():
    payload = solution_payload(_solution(), solve_seconds=0.5, cached=False)
    round_tripped = json.loads(json.dumps(payload))
    assert round_tripped["schema_version"] == SCHEMA_VERSION
    assert round_tripped["cached"] is False
    assert round_tripped["result"]["iterations"] == 7
    assert round_tripped["result"]["lam"] == [1.0, 2.0]
    assert "primal" not in round_tripped["result"]


def test_solution_payload_includes_primal_on_request():
    payload = solution_payload(
        _solution(), solve_seconds=0.5, cached=False, return_primal=True
    )
    assert payload["result"]["primal"] == [[1.0, 1.0], [2.0, 2.0]]
