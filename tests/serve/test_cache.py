"""Tests of the result cache LRU."""

import pytest

from repro.serve.cache import ResultCache


def test_hit_miss_counters_and_hit_rate():
    cache = ResultCache(max_entries=4)
    assert cache.get("a") is None
    cache.put("a", {"value": 1})
    assert cache.get("a") == {"value": 1}
    stats = cache.stats()
    assert stats["hits"] == 1 and stats["misses"] == 1
    assert stats["hit_rate"] == 0.5
    assert stats["entries"] == 1


def test_lru_eviction_order_respects_recency():
    cache = ResultCache(max_entries=2)
    cache.put("a", {"value": 1})
    cache.put("b", {"value": 2})
    assert cache.get("a") is not None  # refresh "a"
    cache.put("c", {"value": 3})  # evicts "b", the least recently used
    assert cache.get("b") is None
    assert cache.get("a") is not None
    assert cache.get("c") is not None
    assert len(cache) == 2


def test_zero_capacity_disables_caching():
    cache = ResultCache(max_entries=0)
    cache.put("a", {"value": 1})
    assert cache.get("a") is None
    assert len(cache) == 0


def test_negative_capacity_is_rejected():
    with pytest.raises(ValueError, match="max_entries"):
        ResultCache(max_entries=-1)
