"""Tests of the closed-loop load generator."""

import pytest

from repro.serve import ServeConfig, ServerThread
from repro.serve.loadgen import run_load

MIX = [
    {"workload": "heat-2d-quick", "rhs": 1.0},
    {"workload": "heat-2d-quick", "rhs": 2.0},
    {"workload": "heat-2d-quick", "rhs": 3.0},
    {"workload": "heat-2d-quick", "rhs": 4.0},
]


@pytest.fixture(scope="module")
def server():
    with ServerThread(ServeConfig(port=0, concurrency=2, queue_limit=8)) as thread:
        yield thread


def test_cold_then_warm_pass(server):
    cold = run_load("127.0.0.1", server.port, MIX, clients=2, keep_replies=True)
    assert cold.requests == len(MIX)
    assert cold.completed == len(MIX)
    assert cold.errors == 0 and cold.timeouts_504 == 0
    assert cold.cache_hits == 0
    assert len(cold.replies) == len(MIX)
    assert all(r["result"]["converged"] for r in cold.replies)

    warm = run_load("127.0.0.1", server.port, MIX, clients=2)
    assert warm.completed == len(MIX)
    assert warm.cache_hits == len(MIX)
    assert warm.replies == []  # keep_replies off by default


def test_report_percentiles_and_throughput(server):
    report = run_load("127.0.0.1", server.port, MIX, clients=2, rounds=2)
    assert report.completed == 2 * len(MIX)
    stats = report.latency_percentiles()
    assert stats["p50"] <= stats["p95"] <= stats["p99"] <= stats["max"]
    assert report.throughput > 0
    doc = report.to_dict()
    assert doc["completed"] == report.completed
    assert doc["p50"] == stats["p50"]
    assert doc["throughput_per_second"] == report.throughput


def test_bad_requests_count_as_errors(server):
    report = run_load(
        "127.0.0.1",
        server.port,
        [{"workload": "no-such-preset"}, {"workload": "heat-2d-quick", "rhs": 5.0}],
        clients=1,
    )
    assert report.errors == 1
    assert report.completed == 1


def test_empty_latency_report_is_well_formed():
    from repro.serve.loadgen import LoadReport

    report = LoadReport()
    assert report.latency_percentiles() == {}
    assert report.throughput == 0.0
    assert "p50" not in report.to_dict()
