"""Serve-layer observability: Prometheus endpoint, request ids, access logs."""

import http.client
import logging
import re

import pytest

from repro.serve import ServeClient, ServeConfig, ServeError, ServerThread

pytestmark = pytest.mark.filterwarnings("ignore::pytest.PytestUnraisableExceptionWarning")

_HELP = re.compile(r"^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .+$")
_TYPE = re.compile(r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$")
_SAMPLE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? \S+$")


@pytest.fixture()
def server():
    with ServerThread(ServeConfig(port=0, concurrency=2, queue_limit=4)) as thread:
        yield thread


@pytest.fixture()
def client(server):
    with ServeClient(port=server.port) as c:
        yield c


def _assert_valid_exposition(text: str) -> None:
    for line in text.splitlines():
        if not line:
            continue
        assert (
            _HELP.match(line) or _TYPE.match(line) or _SAMPLE.match(line)
        ), f"invalid exposition line: {line!r}"


def test_prometheus_endpoint_is_valid_exposition(client):
    client.solve("heat-2d-quick", rhs=2.0)
    text = client.metrics_prometheus()
    _assert_valid_exposition(text)
    assert "# TYPE repro_serve_requests_total counter" in text
    assert "# TYPE repro_serve_uptime_seconds gauge" in text


def test_prometheus_counters_move_with_solves(client):
    def counter(text: str, name: str) -> float:
        match = re.search(rf"^{name} (\S+)$", text, re.MULTILINE)
        return float(match.group(1)) if match else 0.0

    before = client.metrics_prometheus()
    client.solve("heat-2d-quick", rhs=5.0)
    client.solve("heat-2d-quick", rhs=5.0)  # result-cache hit
    after = client.metrics_prometheus()
    assert (
        counter(after, "repro_serve_solve_completed_total")
        == counter(before, "repro_serve_solve_completed_total") + 1
    )
    assert (
        counter(after, "repro_serve_solve_cache_hits_total")
        == counter(before, "repro_serve_solve_cache_hits_total") + 1
    )
    # the PR-9 tier/pool gauges are present after a solve
    assert "repro_tier_resident_bytes" in after
    assert "repro_pool_sessions 1" in after
    assert "repro_serve_request_latency_seconds_bucket" in after


def test_metrics_json_has_uptime_and_schema(client):
    doc = client.metrics()
    assert doc["uptime_seconds"] > 0.0
    assert "schema_version" in doc


def test_client_rejects_schema_mismatch(server, monkeypatch):
    import repro.serve.client as client_mod

    with ServeClient(port=server.port) as c:
        monkeypatch.setattr(client_mod, "SCHEMA_VERSION", -1)
        with pytest.raises(ServeError, match="schema_version mismatch"):
            c.metrics()


def test_request_id_echoed(server):
    conn = http.client.HTTPConnection("127.0.0.1", server.port)
    try:
        conn.request("GET", "/v1/health", headers={"X-Repro-Request-Id": "trace-me-42"})
        response = conn.getresponse()
        response.read()
        assert response.getheader("X-Repro-Request-Id") == "trace-me-42"
    finally:
        conn.close()


def test_request_id_generated_when_absent_or_malformed(server):
    conn = http.client.HTTPConnection("127.0.0.1", server.port)
    try:
        conn.request("GET", "/v1/health")
        response = conn.getresponse()
        response.read()
        generated = response.getheader("X-Repro-Request-Id")
        assert generated and re.fullmatch(r"[0-9a-f]{16}", generated)

        conn.request(
            "GET", "/v1/health", headers={"X-Repro-Request-Id": "bad id with spaces"}
        )
        response = conn.getresponse()
        response.read()
        sanitized = response.getheader("X-Repro-Request-Id")
        assert sanitized != "bad id with spaces"
        assert re.fullmatch(r"[0-9a-f]{16}", sanitized)
    finally:
        conn.close()


def test_access_log_records_solve(client, caplog):
    with caplog.at_level(logging.INFO, logger="repro.serve.access"):
        client.solve("heat-2d-quick", rhs=4.0)
    records = [r for r in caplog.records if getattr(r, "repro_event", "") == "request"]
    assert records, "expected an access-log record per request"
    fields = records[-1].repro_fields
    assert fields["method"] == "POST"
    assert fields["path"] == "/v1/solve"
    assert fields["status"] == 200
    assert fields["latency_ms"] >= 0.0
    assert fields["disposition"] in ("solved", "cached")
    assert "pattern" in fields
    assert re.fullmatch(r"[0-9a-f]{16}", fields["request_id"])


def test_access_log_disposition_for_validation_error(client, caplog):
    with caplog.at_level(logging.INFO, logger="repro.serve.access"):
        with pytest.raises(ServeError):
            client.solve("no-such-preset")
    records = [r for r in caplog.records if getattr(r, "repro_event", "") == "request"]
    assert records[-1].repro_fields["disposition"] == "invalid-400"
    assert records[-1].repro_fields["status"] == 400


def test_404_and_405_still_carry_request_id(server):
    conn = http.client.HTTPConnection("127.0.0.1", server.port)
    try:
        conn.request("GET", "/nope")
        response = conn.getresponse()
        response.read()
        assert response.status == 404
        assert response.getheader("X-Repro-Request-Id")

        conn.request("POST", "/v1/metrics/prometheus")
        response = conn.getresponse()
        response.read()
        assert response.status == 405
    finally:
        conn.close()
