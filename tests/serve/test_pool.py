"""Tests of the pattern-keyed session pool."""

import numpy as np
import pytest

from repro.api import Workload
from repro.runtime.executor import ExecutionSpec
from repro.serve.pool import SessionPool

HEAT = Workload.from_preset("heat-2d-quick")
ELASTICITY = Workload.from_preset("elasticity-2d-quick")


def test_same_pattern_workloads_share_one_session():
    harder = Workload.from_dict({**HEAT.to_dict(), "material": {"conductivity": 9.0}})
    with SessionPool(max_sessions=4) as pool:
        first = pool.entry_for(HEAT)
        second = pool.entry_for(harder)
        assert first is second
        assert len(pool) == 1

        first.solve(HEAT, None, None)
        second.solve(harder, None, None)
        stats = first.session.cache_stats()
        # Two different workloads, one sparsity pattern: exactly one
        # symbolic analysis, the second build is a pattern-cache hit.
        assert stats["symbolic_analyses"] == 1
        assert stats["pattern_hits"] >= 1
        assert stats["solves"] == 2


def test_different_patterns_get_different_sessions():
    with SessionPool(max_sessions=4) as pool:
        assert pool.entry_for(HEAT) is not pool.entry_for(ELASTICITY)
        assert len(pool) == 2


def test_lru_eviction_closes_the_evicted_session():
    coarse = Workload.from_dict({**HEAT.to_dict(), "cells": HEAT.cells + 1})
    with SessionPool(max_sessions=2) as pool:
        pool.entry_for(HEAT)
        pool.entry_for(ELASTICITY)
        pool.entry_for(HEAT)  # refresh heat so elasticity is the LRU
        pool.entry_for(coarse)  # third pattern: evicts elasticity
        assert pool.evictions == 1
        assert len(pool) == 2
        keys = {entry["pattern"][0] for entry in pool.stats()["patterns"]}
        assert keys == {"heat"}


def test_pool_forces_the_serial_backend_in_sessions(monkeypatch):
    monkeypatch.setenv("REPRO_EXECUTOR", "threads")
    monkeypatch.setenv("REPRO_WORKERS", "2")
    pool = SessionPool()
    try:
        assert pool.spec.execution == ExecutionSpec()
    finally:
        pool.close()


def test_solves_through_the_pool_match_direct_session_solves():
    from repro.api import Session

    with SessionPool() as pool:
        served = pool.entry_for(HEAT).solve(HEAT, None, 2.0)
    with Session() as session:
        direct = session.queue().submit(HEAT, rhs=2.0).result()
    np.testing.assert_allclose(served.lam, direct.lam)
    assert served.iterations == direct.iterations


def test_capacity_must_be_positive():
    with pytest.raises(ValueError, match="max_sessions"):
        SessionPool(max_sessions=0)
