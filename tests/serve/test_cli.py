"""Tests of the repro-serve CLI surface."""

from repro.serve.cli import build_parser
from repro.serve.server import ServeConfig


def test_parser_defaults_match_serve_config():
    defaults = ServeConfig()
    args = build_parser().parse_args([])
    assert args.host == defaults.host
    assert args.port == defaults.port
    assert args.concurrency == defaults.concurrency
    assert args.queue_limit == defaults.queue_limit
    assert args.timeout == defaults.timeout_seconds
    assert args.pool_size == defaults.pool_size
    assert args.cache_size == defaults.cache_size
    assert args.spec is None


def test_parser_accepts_capacity_knobs():
    args = build_parser().parse_args(
        [
            "--host", "0.0.0.0",
            "--port", "0",
            "--spec", "cpu-explicit",
            "--concurrency", "4",
            "--queue-limit", "16",
            "--timeout", "2.5",
            "--pool-size", "3",
            "--cache-size", "0",
        ]
    )
    config = ServeConfig(
        host=args.host,
        port=args.port,
        spec=args.spec,
        concurrency=args.concurrency,
        queue_limit=args.queue_limit,
        timeout_seconds=args.timeout,
        pool_size=args.pool_size,
        cache_size=args.cache_size,
    )
    assert config.port == 0
    assert config.spec == "cpu-explicit"
    assert config.queue_limit == 16
    assert config.cache_size == 0
