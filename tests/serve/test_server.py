"""End-to-end tests of the HTTP solve service.

Each test boots a real :class:`SolveServer` on an ephemeral port (via
``ServerThread``) and talks to it through ``ServeClient`` — the full wire
path, not handler calls.  Workloads are the quick presets, so each solve is
a few tens of milliseconds.
"""

import threading
import time

import pytest

from repro.serve import ServeClient, ServeConfig, ServeError, ServerThread
from repro.serve.server import SolveServer

pytestmark = pytest.mark.filterwarnings("ignore::pytest.PytestUnraisableExceptionWarning")


@pytest.fixture()
def server():
    with ServerThread(ServeConfig(port=0, concurrency=2, queue_limit=4)) as thread:
        yield thread


@pytest.fixture()
def client(server):
    with ServeClient(port=server.port) as c:
        yield c


# --------------------------------------------------------------------- #
# Contract: health and metrics                                           #
# --------------------------------------------------------------------- #
def test_health_reports_capacity_without_touching_sessions(client):
    doc = client.health()
    assert doc["status"] == "ok"
    assert doc["sessions"] == 0  # health alone must not build sessions
    assert doc["concurrency"] == 2
    assert doc["queue_limit"] == 4


def test_metrics_contract(client):
    client.solve("heat-2d-quick", rhs=2.0)
    doc = client.metrics()
    assert {"counters", "latency_seconds", "result_cache", "session_pool"} <= set(doc)
    assert doc["counters"]["solve_completed"] == 1
    assert doc["counters"]["solve_cache_misses"] == 1
    assert doc["latency_seconds"]["window"] == 1
    assert doc["latency_seconds"]["p50"] > 0
    assert doc["result_cache"]["entries"] == 1
    assert doc["session_pool"]["sessions"] == 1


def test_unknown_path_404_and_wrong_method_405(client):
    with pytest.raises(ServeError) as exc_info:
        client._request("GET", "/v1/nope")
    assert exc_info.value.status == 404
    with pytest.raises(ServeError) as exc_info:
        client._request("GET", "/v1/solve")
    assert exc_info.value.status == 405
    with pytest.raises(ServeError) as exc_info:
        client._request("POST", "/v1/health", {})
    assert exc_info.value.status == 405


# --------------------------------------------------------------------- #
# Solving                                                                #
# --------------------------------------------------------------------- #
def test_solve_round_trip_with_primal(client):
    reply = client.solve("heat-2d-quick", spec="cpu-explicit", rhs=2.0, return_primal=True)
    assert reply["cached"] is False
    assert reply["result"]["converged"] is True
    assert reply["result"]["iterations"] > 0
    assert len(reply["result"]["primal"]) == 4  # 2x2 subdomains
    assert reply["result"]["lam_norm"] > 0


def test_invalid_requests_get_actionable_400s(client):
    with pytest.raises(ServeError, match="registered presets") as exc_info:
        client.solve("no-such-preset")
    assert exc_info.value.status == 400
    with pytest.raises(ServeError, match="unknown request field") as exc_info:
        client._request("POST", "/v1/solve", {"workloads": "heat-2d-quick"})
    assert exc_info.value.status == 400


def test_result_cache_serves_repeat_requests(client):
    first = client.solve("heat-2d-quick", rhs=2.0)
    second = client.solve("heat-2d-quick", rhs=2.0)
    assert first["cached"] is False and second["cached"] is True
    assert second["result"] == first["result"]
    different = client.solve("heat-2d-quick", rhs=3.0)
    assert different["cached"] is False
    counters = client.metrics()["counters"]
    assert counters["solve_cache_hits"] == 1
    assert counters["solve_cache_misses"] == 2


def test_same_pattern_requests_share_one_symbolic_analysis(client):
    """N same-pattern solves pay for exactly one symbolic analysis."""
    for factor in (1.0, 2.0, 3.0):  # distinct fingerprints: all real solves
        client.solve("heat-2d-quick", rhs=factor)
    patterns = client.metrics()["session_pool"]["patterns"]
    assert len(patterns) == 1
    (pattern,) = patterns
    assert pattern["solves"] == 3
    assert pattern["symbolic_analyses"] == 1
    assert pattern["solver_reuses"] == 2


def test_distinct_patterns_get_distinct_sessions(client):
    client.solve("heat-2d-quick")
    client.solve("elasticity-2d-quick", spec="cpu-explicit")
    pool = client.metrics()["session_pool"]
    assert pool["sessions"] == 2


# --------------------------------------------------------------------- #
# Admission control and timeouts                                         #
# --------------------------------------------------------------------- #
def _slow_solve(monkeypatch, delay: float):
    """Make every pooled solve take at least ``delay`` seconds."""
    from repro.serve.pool import PoolEntry

    original = PoolEntry.solve

    def slowed(self, workload, spec, rhs):
        time.sleep(delay)
        return original(self, workload, spec, rhs)

    monkeypatch.setattr(PoolEntry, "solve", slowed)


def test_saturation_yields_429_with_retry_after(monkeypatch):
    _slow_solve(monkeypatch, 0.8)
    config = ServeConfig(
        port=0, concurrency=1, queue_limit=1, retry_after_seconds=0.25
    )
    with ServerThread(config) as server:
        background_error = []

        def occupy():
            try:
                with ServeClient(port=server.port) as c:
                    c.solve("heat-2d-quick", rhs=1.0)
            except ServeError as exc:  # pragma: no cover - diagnostic only
                background_error.append(exc)

        occupant = threading.Thread(target=occupy)
        occupant.start()
        try:
            time.sleep(0.2)  # let the occupant get admitted
            with ServeClient(port=server.port) as client:
                with pytest.raises(ServeError, match="queue is full") as exc_info:
                    client.solve("heat-2d-quick", rhs=2.0)
                assert exc_info.value.status == 429
                assert exc_info.value.retry_after == 0.25
        finally:
            occupant.join()
        assert not background_error

        # Once the occupant finished, admission reopens.
        with ServeClient(port=server.port) as client:
            reply = client.solve("heat-2d-quick", rhs=3.0)
            assert reply["result"]["converged"] is True
            assert client.metrics()["counters"]["solve_rejected_429"] == 1


def test_timeout_yields_504_and_session_stays_serviceable(client):
    with pytest.raises(ServeError, match="did not finish") as exc_info:
        client.solve("heat-2d-quick", rhs=2.0, timeout=1e-6)
    assert exc_info.value.status == 504

    # The abandoned solve finishes in the background under the session's
    # locks; the very same pattern keeps serving subsequent requests.
    reply = client.solve("heat-2d-quick", rhs=3.0)
    assert reply["result"]["converged"] is True
    counters = client.metrics()["counters"]
    assert counters["solve_timeouts_504"] == 1
    assert counters["solve_completed"] >= 1


def test_config_validation():
    with pytest.raises(ValueError, match="concurrency"):
        ServeConfig(concurrency=0)
    with pytest.raises(ValueError, match="queue_limit"):
        ServeConfig(concurrency=4, queue_limit=2)
    with pytest.raises(ValueError, match="timeout_seconds"):
        ServeConfig(timeout_seconds=0)


def test_server_binds_an_ephemeral_port():
    server = SolveServer(ServeConfig(port=0))
    assert server.port == 0  # not bound yet

    import asyncio

    async def check():
        await server.start()
        bound = server.port
        await server.aclose()
        return bound

    assert asyncio.run(check()) > 0


def test_metrics_accumulate_coarse_seconds(client):
    client.solve("heat-2d-quick", rhs=3.0)
    doc = client.metrics()
    assert "totals" in doc
    assert "coarse_seconds" in doc["totals"]
    assert doc["totals"]["coarse_seconds"] >= 0.0
    pool = doc["session_pool"]
    assert "coarse_applies" in pool
    assert "coarse_seconds" in pool
    assert "hierarchical_projectors" in pool


def test_solution_payload_reports_coarse_seconds(client):
    reply = client.solve("heat-2d-quick", rhs=4.0)
    assert "coarse_seconds" in reply["result"]
    assert reply["result"]["coarse_seconds"] >= 0.0
