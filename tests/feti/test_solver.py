"""End-to-end tests of the FETI solver and the multi-step driver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.decomposition import decompose_box
from repro.feti.config import DualOperatorApproach
from repro.api import SolverSpec
from repro.feti.problem import FetiProblem
from repro.feti.solver import (
    FetiSolver,
    MultiStepDriver,
    PreconditionerKind,
)


def _solve(problem, approach, machine_config, tol=1e-10):
    options = SolverSpec(
        approach=approach,
        preconditioner=PreconditionerKind.LUMPED,
        tolerance=tol,
        max_iterations=400,
        machine=machine_config,
    )
    return FetiSolver(problem, options).solve()


@pytest.mark.parametrize(
    "approach",
    [
        DualOperatorApproach.IMPLICIT_MKL,
        DualOperatorApproach.EXPLICIT_MKL,
        DualOperatorApproach.EXPLICIT_GPU_LEGACY,
        DualOperatorApproach.EXPLICIT_GPU_MODERN,
        DualOperatorApproach.EXPLICIT_HYBRID,
    ],
)
def test_heat_2d_matches_direct_solution(heat_problem_2d, small_machine_config, approach):
    solution = _solve(heat_problem_2d, approach, small_machine_config)
    assert solution.converged
    u = np.concatenate(solution.primal)
    u_ref, lam_ref = heat_problem_2d.saddle_point_solution()
    assert np.allclose(u, u_ref, atol=1e-7)


def test_heat_3d_matches_direct_solution(heat_problem_3d, small_machine_config):
    solution = _solve(
        heat_problem_3d, DualOperatorApproach.EXPLICIT_GPU_MODERN, small_machine_config
    )
    assert solution.converged
    u = np.concatenate(solution.primal)
    u_ref, _ = heat_problem_3d.saddle_point_solution()
    assert np.allclose(u, u_ref, atol=1e-6)


def test_elasticity_2d_matches_direct_solution(elasticity_problem_2d, small_machine_config):
    solution = _solve(
        elasticity_problem_2d, DualOperatorApproach.IMPLICIT_CHOLMOD, small_machine_config
    )
    assert solution.converged
    u = np.concatenate(solution.primal)
    u_ref, _ = elasticity_problem_2d.saddle_point_solution()
    assert np.allclose(u, u_ref, atol=1e-6)


def test_elasticity_3d_small_problem(elasticity, small_machine_config):
    dec = decompose_box(3, (2, 1, 1), 2, order=1)
    problem = FetiProblem.from_physics(elasticity, dec, dirichlet_faces=("xmin",))
    solution = _solve(problem, DualOperatorApproach.EXPLICIT_GPU_MODERN, small_machine_config)
    assert solution.converged
    u = np.concatenate(solution.primal)
    u_ref, _ = problem.saddle_point_solution()
    assert np.allclose(u, u_ref, atol=1e-6)


def test_lambda_satisfies_dirichlet_constraints(heat_problem_2d, small_machine_config):
    """The converged solution satisfies B u = c (both gluing and Dirichlet rows)."""
    solution = _solve(heat_problem_2d, DualOperatorApproach.IMPLICIT_MKL, small_machine_config)
    B = heat_problem_2d.gluing.global_B(
        [s.ndofs for s in heat_problem_2d.subdomains]
    )
    u = np.concatenate(solution.primal)
    assert np.allclose(B @ u, heat_problem_2d.c, atol=1e-7)


def test_solution_timings_populated(heat_problem_2d, small_machine_config):
    solution = _solve(
        heat_problem_2d, DualOperatorApproach.EXPLICIT_GPU_MODERN, small_machine_config
    )
    assert solution.preprocessing.simulated_seconds > 0
    assert solution.dual_apply_seconds > 0
    assert solution.iterations > 0


def test_gpu_approach_autoselects_table2_configuration(
    heat_problem_2d, small_machine_config
):
    options = SolverSpec(
        approach=DualOperatorApproach.EXPLICIT_GPU_MODERN,
        machine=small_machine_config,
        assembly="table2",
    )
    solver = FetiSolver(heat_problem_2d, options)
    config = solver.operator.config
    from repro.feti.config import FactorStorage, Path

    assert config.path is Path.SYRK
    assert config.forward_factor_storage is FactorStorage.DENSE  # modern CUDA


def test_multistep_driver_runs_algorithm_2(heat_problem_3d, small_machine_config):
    options = SolverSpec(
        approach=DualOperatorApproach.EXPLICIT_GPU_MODERN,
        machine=small_machine_config,
        assembly="table2",
        tolerance=1e-8,
        max_iterations=200,
    )
    solver = FetiSolver(heat_problem_3d, options)

    def update(step, problem):
        # change numerical values (not the pattern), as in the paper's use case
        for sub in problem.subdomains:
            sub.f = sub.f * (1.0 + 0.1 * step)

    driver = MultiStepDriver(solver, update=update)
    records = driver.run(3)
    assert len(records) == 3
    assert all(r.converged for r in records)
    assert all(r.preprocessing_seconds > 0 for r in records)
    assert all(r.apply_seconds > 0 for r in records)
    assert driver.total_dual_operator_seconds == pytest.approx(
        sum(r.dual_operator_seconds for r in records)
    )
    # symbolic factorization/preparation ran exactly once across all steps
    assert solver.operator.ledger.count("preparation") == 1
    assert solver.operator.ledger.count("preprocessing") == 3


def test_solver_reuse_preprocessing_flag(heat_problem_2d, small_machine_config):
    options = SolverSpec(
        approach=DualOperatorApproach.IMPLICIT_MKL, machine=small_machine_config
    )
    solver = FetiSolver(heat_problem_2d, options)
    solver.preprocess()
    before = solver.operator.ledger.count("preprocessing")
    solver.solve(reuse_preprocessing=True)
    assert solver.operator.ledger.count("preprocessing") == before


def test_batched_and_looped_solvers_produce_identical_solutions(
    heat_problem_2d, small_machine_config
):
    """The batched engine is an execution strategy, not a numerical change."""
    solutions = {}
    for batched in (False, True):
        options = SolverSpec(
            approach=DualOperatorApproach.EXPLICIT_MKL,
            machine=small_machine_config,
            tolerance=1e-11,
            max_iterations=400,
            batched=batched,
        )
        solutions[batched] = FetiSolver(heat_problem_2d, options).solve()
    assert solutions[True].converged and solutions[False].converged
    np.testing.assert_allclose(
        solutions[True].lam, solutions[False].lam, atol=1e-10
    )
    u_batched = np.concatenate(solutions[True].primal)
    u_looped = np.concatenate(solutions[False].primal)
    np.testing.assert_allclose(u_batched, u_looped, atol=1e-10)


def test_multistep_driver_records_accumulate_across_runs(
    heat_problem_2d, small_machine_config
):
    options = SolverSpec(
        approach=DualOperatorApproach.IMPLICIT_MKL,
        machine=small_machine_config,
    )
    driver = MultiStepDriver(FetiSolver(heat_problem_2d, options))
    first = driver.run(2)
    assert [r.step for r in first] == [0, 1]
    second = driver.run(1)
    # run() returns the accumulated record list and keeps earlier records.
    assert second is driver.records
    assert len(driver.records) == 3
    assert driver.total_dual_operator_seconds == pytest.approx(
        sum(r.dual_operator_seconds for r in driver.records)
    )
    assert all(r.dual_operator_seconds > 0 for r in driver.records)


def test_solver_reuse_preprocessing_reuses_ledger_phase(
    heat_problem_2d, small_machine_config
):
    options = SolverSpec(
        approach=DualOperatorApproach.EXPLICIT_MKL,
        machine=small_machine_config,
    )
    solver = FetiSolver(heat_problem_2d, options)
    first = solver.solve()
    ledger_phase = solver.operator.ledger.last("preprocessing")
    reused = solver.solve(reuse_preprocessing=True)
    # No new preprocessing phase ran and the returned timing is the cached one.
    assert solver.operator.ledger.count("preprocessing") == 1
    assert reused.preprocessing is ledger_phase
    np.testing.assert_allclose(reused.lam, first.lam, atol=1e-10)
    fresh = solver.solve(reuse_preprocessing=False)
    assert solver.operator.ledger.count("preprocessing") == 2
    np.testing.assert_allclose(fresh.lam, first.lam, atol=1e-10)
