"""Tests of the dual preconditioners."""

from __future__ import annotations

import numpy as np
import pytest

from repro.feti.preconditioner import (
    DirichletPreconditioner,
    IdentityPreconditioner,
    LumpedPreconditioner,
)
from repro.api import SolverSpec
from repro.feti.solver import FetiSolver, PreconditionerKind


def test_identity_returns_input(heat_problem_2d):
    pre = IdentityPreconditioner(heat_problem_2d)
    x = np.arange(heat_problem_2d.n_lambda, dtype=float)
    assert pre.apply(x) is x


@pytest.mark.parametrize("cls", [LumpedPreconditioner, DirichletPreconditioner])
def test_preconditioner_is_symmetric_positive_semidefinite(heat_problem_2d, cls):
    pre = cls(heat_problem_2d)
    n = heat_problem_2d.n_lambda
    rng = np.random.default_rng(0)
    # build the dense operator by applying to basis vectors
    M = np.column_stack([pre.apply(np.eye(n)[:, j]) for j in range(n)])
    assert np.allclose(M, M.T, atol=1e-9)
    eigs = np.linalg.eigvalsh(M)
    assert eigs.min() > -1e-9
    x = rng.standard_normal(n)
    assert x @ pre.apply(x) >= -1e-9


@pytest.mark.parametrize("cls", [LumpedPreconditioner, DirichletPreconditioner])
def test_preconditioner_linear(heat_problem_2d, cls):
    pre = cls(heat_problem_2d)
    rng = np.random.default_rng(1)
    n = heat_problem_2d.n_lambda
    x, y = rng.standard_normal(n), rng.standard_normal(n)
    assert np.allclose(pre.apply(2.0 * x + y), 2.0 * pre.apply(x) + pre.apply(y))


@pytest.mark.parametrize(
    "kind",
    [PreconditionerKind.NONE, PreconditionerKind.LUMPED, PreconditionerKind.DIRICHLET],
)
def test_all_preconditioners_converge_to_same_solution(heat_problem_2d, kind):
    reference = None
    options = SolverSpec(
        preconditioner=kind, tolerance=1e-10, max_iterations=300
    )
    solver = FetiSolver(heat_problem_2d, options)
    solution = solver.solve()
    assert solution.converged
    u = np.concatenate(solution.primal)
    u_ref, _ = heat_problem_2d.saddle_point_solution()
    assert np.allclose(u, u_ref, atol=1e-7)


def test_preconditioning_reduces_iterations(elasticity_problem_2d):
    """The lumped preconditioner should not need more iterations than none."""
    def run(kind):
        opts = SolverSpec(
            preconditioner=kind, tolerance=1e-8, max_iterations=400
        )
        return FetiSolver(elasticity_problem_2d, opts).solve().iterations

    assert run(PreconditionerKind.LUMPED) <= run(PreconditionerKind.NONE) + 2
