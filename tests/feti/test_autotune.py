"""Tests of the Table-II auto-configuration and the exhaustive sweep."""

from __future__ import annotations

import pytest

from repro.decomposition import decompose_box
from repro.fem.heat import HeatTransferProblem
from repro.feti.autotune import (
    DENSE_SPARSE_CROSSOVER_DOFS,
    exhaustive_parameter_search,
    recommend_assembly_config,
)
from repro.feti.config import (
    CudaLibraryVersion,
    FactorOrder,
    FactorStorage,
    Path,
    RhsOrder,
    ScatterGatherDevice,
)
from repro.feti.problem import FetiProblem


def test_modern_recommendation_matches_table2():
    for dim, expected_rhs in ((2, RhsOrder.COL_MAJOR), (3, RhsOrder.ROW_MAJOR)):
        cfg = recommend_assembly_config(CudaLibraryVersion.MODERN, dim, 5000)
        assert cfg.path is Path.SYRK
        assert cfg.forward_factor_storage is FactorStorage.DENSE
        assert cfg.forward_factor_order is FactorOrder.COL_MAJOR
        assert cfg.rhs_order is expected_rhs
        assert cfg.scatter_gather is ScatterGatherDevice.GPU


def test_legacy_recommendation_matches_table2():
    cfg_2d = recommend_assembly_config(CudaLibraryVersion.LEGACY, 2, 5000)
    assert cfg_2d.forward_factor_storage is FactorStorage.SPARSE
    assert cfg_2d.forward_factor_order is FactorOrder.ROW_MAJOR
    assert cfg_2d.rhs_order is RhsOrder.ROW_MAJOR

    small_3d = recommend_assembly_config(CudaLibraryVersion.LEGACY, 3, 5000)
    assert small_3d.forward_factor_storage is FactorStorage.DENSE
    assert small_3d.forward_factor_order is FactorOrder.COL_MAJOR

    large_3d = recommend_assembly_config(
        CudaLibraryVersion.LEGACY, 3, DENSE_SPARSE_CROSSOVER_DOFS + 1
    )
    assert large_3d.forward_factor_storage is FactorStorage.SPARSE
    assert large_3d.forward_factor_order is FactorOrder.ROW_MAJOR


def test_scatter_gather_override_and_invalid_dim():
    cfg = recommend_assembly_config(
        CudaLibraryVersion.MODERN, 2, 100, scatter_gather=ScatterGatherDevice.CPU
    )
    assert cfg.scatter_gather is ScatterGatherDevice.CPU
    with pytest.raises(ValueError):
        recommend_assembly_config(CudaLibraryVersion.MODERN, 4, 100)


@pytest.mark.parametrize("library", list(CudaLibraryVersion))
def test_exhaustive_search_prefers_syrk(library, small_machine_config, heat):
    """The sweep on a small problem reproduces the paper's headline: SYRK wins."""
    dec = decompose_box(2, (2, 1), 3, order=1)
    problem = FetiProblem.from_physics(heat, dec, dirichlet_faces=("xmin",))
    # restrict the swept configurations to a manageable subset for speed
    from repro.feti.config import AssemblyConfig

    configs = [
        AssemblyConfig(path=Path.SYRK, forward_factor_storage=FactorStorage.DENSE,
                       backward_factor_storage=FactorStorage.DENSE),
        AssemblyConfig(path=Path.TRSM, forward_factor_storage=FactorStorage.DENSE,
                       backward_factor_storage=FactorStorage.DENSE),
        AssemblyConfig(path=Path.SYRK, forward_factor_storage=FactorStorage.SPARSE,
                       backward_factor_storage=FactorStorage.SPARSE),
        AssemblyConfig(path=Path.TRSM, forward_factor_storage=FactorStorage.SPARSE,
                       backward_factor_storage=FactorStorage.SPARSE),
    ]
    results = exhaustive_parameter_search(
        problem, library, machine_config=small_machine_config, configs=configs
    )
    assert len(results) == 4
    assert results[0].config.path is Path.SYRK
    assert results[0].total <= results[-1].total
    assert all(m.preprocessing_seconds > 0 for m in results)
