"""Tests of the FETI problem assembly (subdomain data, G, e, saddle point)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.decomposition import decompose_box
from repro.feti.problem import FetiProblem


def test_subdomain_data_shapes(heat_problem_2d):
    problem = heat_problem_2d
    assert problem.n_subdomains == 4
    assert problem.dofs_per_node == 1
    for sub in problem.subdomains:
        assert sub.K.shape == (sub.ndofs, sub.ndofs)
        assert sub.K_reg.shape == sub.K.shape
        assert sub.B.shape == (sub.n_lambda, sub.ndofs)
        assert sub.f.shape == (sub.ndofs,)
        assert sub.kernel.shape == (sub.ndofs, 1)
        assert sub.dof_multiplicity.shape == (sub.ndofs,)
        assert sub.lambda_ids.max() < problem.n_lambda


def test_elasticity_kernel_dims(elasticity_problem_2d):
    problem = elasticity_problem_2d
    assert problem.dofs_per_node == 2
    assert problem.kernel_dims == [3, 3]
    assert problem.total_kernel_dim == 6
    assert np.array_equal(problem.kernel_offsets, [0, 3, 6])


def test_G_and_e_shapes_and_values(heat_problem_2d):
    problem = heat_problem_2d
    G = problem.assemble_G()
    assert G.shape == (problem.n_lambda, problem.total_kernel_dim)
    # G = B R column blocks: check one subdomain explicitly
    sub = problem.subdomains[0]
    offsets = problem.kernel_offsets
    block = G[:, offsets[0] : offsets[1]].toarray()
    expected = np.zeros_like(block)
    expected[sub.lambda_ids, :] = sub.B @ sub.kernel
    assert np.allclose(block, expected)

    e = problem.compute_e()
    assert e.shape == (problem.total_kernel_dim,)
    assert e[0] == pytest.approx(float((sub.kernel.T @ sub.f)[0]))


def test_G_has_full_column_rank(heat_problem_2d, heat_problem_3d):
    for problem in (heat_problem_2d, heat_problem_3d):
        G = problem.assemble_G().toarray()
        assert np.linalg.matrix_rank(G) == problem.total_kernel_dim


def test_local_dual_scatter_gather(heat_problem_2d):
    problem = heat_problem_2d
    rng = np.random.default_rng(0)
    lam = rng.standard_normal(problem.n_lambda)
    sub = problem.subdomains[1]
    local = sub.local_dual(lam)
    assert np.allclose(local, lam[sub.lambda_ids])
    out = np.zeros(problem.n_lambda)
    sub.accumulate_dual(out, local)
    assert np.allclose(out[sub.lambda_ids], local)


def test_saddle_point_solution_satisfies_constraints(heat_problem_2d):
    problem = heat_problem_2d
    u, lam = problem.saddle_point_solution()
    B = problem.gluing.global_B([s.ndofs for s in problem.subdomains])
    assert np.allclose(B @ u, problem.c, atol=1e-9)
    assert lam.shape == (problem.n_lambda,)


def test_primal_solution_from_lambda_alpha(heat_problem_2d):
    """primal_solution() reproduces the saddle-point primal solution."""
    problem = heat_problem_2d
    u_ref, lam = problem.saddle_point_solution()
    # recover alpha from the residual of the first block equation
    offsets = problem.kernel_offsets
    alpha = np.zeros(problem.total_kernel_dim)
    start = 0
    for sub in problem.subdomains:
        u_i = u_ref[start : start + sub.ndofs]
        rhs = sub.f - sub.B.T @ lam[sub.lambda_ids]
        import scipy.sparse.linalg as spla

        u_part = spla.spsolve(sub.K_reg.tocsc(), rhs)
        # alpha solves R alpha = u_i - K+ rhs (R has orthonormal columns)
        alpha[offsets[sub.index] : offsets[sub.index + 1]] = sub.kernel.T @ (u_i - u_part)
        start += sub.ndofs
    rebuilt = np.concatenate(problem.primal_solution(lam, alpha))
    assert np.allclose(rebuilt, u_ref, atol=1e-8)


def test_from_physics_with_multiple_dirichlet_faces(heat):
    dec = decompose_box(2, 2, 2, order=1)
    problem = FetiProblem.from_physics(heat, dec, dirichlet_faces=("xmin", "xmax"))
    assert problem.gluing.n_dirichlet > 0
    u, _ = problem.saddle_point_solution()
    assert np.isfinite(u).all()
