"""Tests of the coarse-space projector."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.feti.projector import Projector


@pytest.fixture()
def projector(heat_problem_2d):
    return Projector(heat_problem_2d.assemble_G())


def test_projector_annihilates_range_of_G(projector, heat_problem_2d):
    G = heat_problem_2d.assemble_G()
    rng = np.random.default_rng(0)
    y = rng.standard_normal(G.shape[1])
    assert np.allclose(projector.apply(G @ y), 0.0, atol=1e-10)


def test_projector_is_idempotent_and_symmetric(projector, heat_problem_2d):
    n = heat_problem_2d.n_lambda
    rng = np.random.default_rng(1)
    x = rng.standard_normal(n)
    px = projector.apply(x)
    assert np.allclose(projector.apply(px), px, atol=1e-10)
    # symmetry: <Px, y> == <x, Py>
    y = rng.standard_normal(n)
    assert projector.apply(x) @ y == pytest.approx(x @ projector.apply(y))


def test_projected_vector_is_orthogonal_to_G(projector, heat_problem_2d):
    G = heat_problem_2d.assemble_G()
    rng = np.random.default_rng(2)
    x = rng.standard_normal(heat_problem_2d.n_lambda)
    assert np.allclose(G.T @ projector.apply(x), 0.0, atol=1e-10)


def test_initial_lambda_satisfies_coarse_constraint(projector, heat_problem_2d):
    e = heat_problem_2d.compute_e()
    lam0 = projector.initial_lambda(e)
    G = heat_problem_2d.assemble_G()
    assert np.allclose(G.T @ lam0, e, atol=1e-10)


def test_alpha_recovery_formula(projector, heat_problem_2d):
    rng = np.random.default_rng(3)
    residual = rng.standard_normal(heat_problem_2d.n_lambda)
    alpha = projector.alpha(residual)
    G = heat_problem_2d.assemble_G()
    gtg = (G.T @ G).toarray()
    assert np.allclose(gtg @ alpha, -(G.T @ residual), atol=1e-10)


def test_callable_interface(projector, heat_problem_2d):
    x = np.ones(heat_problem_2d.n_lambda)
    assert np.allclose(projector(x), projector.apply(x))


def test_empty_G_rejected():
    with pytest.raises(ValueError):
        Projector(sp.csr_matrix((5, 0)))
