"""Tests of the coarse-space projector."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.api.spec import SolverSpec
from repro.api.workload import Workload, build_problem
from repro.feti.projector import Projector, build_projector
from repro.runtime.executor import ExecutionSpec, make_executor


@pytest.fixture()
def projector(heat_problem_2d):
    return Projector(heat_problem_2d.assemble_G())


def test_projector_annihilates_range_of_G(projector, heat_problem_2d):
    G = heat_problem_2d.assemble_G()
    rng = np.random.default_rng(0)
    y = rng.standard_normal(G.shape[1])
    assert np.allclose(projector.apply(G @ y), 0.0, atol=1e-10)


def test_projector_is_idempotent_and_symmetric(projector, heat_problem_2d):
    n = heat_problem_2d.n_lambda
    rng = np.random.default_rng(1)
    x = rng.standard_normal(n)
    px = projector.apply(x)
    assert np.allclose(projector.apply(px), px, atol=1e-10)
    # symmetry: <Px, y> == <x, Py>
    y = rng.standard_normal(n)
    assert projector.apply(x) @ y == pytest.approx(x @ projector.apply(y))


def test_projected_vector_is_orthogonal_to_G(projector, heat_problem_2d):
    G = heat_problem_2d.assemble_G()
    rng = np.random.default_rng(2)
    x = rng.standard_normal(heat_problem_2d.n_lambda)
    assert np.allclose(G.T @ projector.apply(x), 0.0, atol=1e-10)


def test_initial_lambda_satisfies_coarse_constraint(projector, heat_problem_2d):
    e = heat_problem_2d.compute_e()
    lam0 = projector.initial_lambda(e)
    G = heat_problem_2d.assemble_G()
    assert np.allclose(G.T @ lam0, e, atol=1e-10)


def test_alpha_recovery_formula(projector, heat_problem_2d):
    rng = np.random.default_rng(3)
    residual = rng.standard_normal(heat_problem_2d.n_lambda)
    alpha = projector.alpha(residual)
    G = heat_problem_2d.assemble_G()
    gtg = (G.T @ G).toarray()
    assert np.allclose(gtg @ alpha, -(G.T @ residual), atol=1e-10)


def test_callable_interface(projector, heat_problem_2d):
    x = np.ones(heat_problem_2d.n_lambda)
    assert np.allclose(projector(x), projector.apply(x))


def test_empty_G_rejected():
    with pytest.raises(ValueError):
        Projector(sp.csr_matrix((5, 0)))


# --------------------------------------------------------------------- #
# Hierarchical (two-level cluster) coarse problem                        #
# --------------------------------------------------------------------- #
MULTICLUSTER_WORKLOADS = [
    pytest.param(Workload("heat", 2, (4, 4), 3, n_clusters=4), id="heat-2d"),
    pytest.param(
        Workload("heat", 3, (2, 2, 1), 2, n_clusters=2, dirichlet_faces=("zmin",)),
        id="heat-3d",
    ),
    pytest.param(
        Workload("elasticity", 2, (4, 2), 3, n_clusters=4), id="elasticity-2d"
    ),
    pytest.param(
        Workload("elasticity", 3, (2, 2, 1), 2, n_clusters=2), id="elasticity-3d"
    ),
]


def _projector_pair(problem):
    dense = build_projector(problem, mode="dense")
    hier = build_projector(problem, mode="hierarchical")
    return dense, hier


@pytest.mark.parametrize("workload", MULTICLUSTER_WORKLOADS)
def test_hierarchical_matches_dense_across_physics(workload):
    problem = build_problem(workload)
    dense, hier = _projector_pair(problem)
    assert hier.mode == "hierarchical"
    assert hier.n_interface > 0  # the workload genuinely couples clusters
    rng = np.random.default_rng(5)
    x = rng.standard_normal(problem.n_lambda)
    px_dense, px_hier = dense.apply(x), hier.apply(x)
    denom = max(np.linalg.norm(px_dense), 1e-300)
    assert np.linalg.norm(px_hier - px_dense) / denom <= 1e-12


@pytest.mark.parametrize("workload", MULTICLUSTER_WORKLOADS)
def test_hierarchical_projector_algebra(workload):
    """P idempotent, G^T P x == 0 — the projector identities, hierarchically."""
    problem = build_problem(workload)
    hier = build_projector(problem, mode="hierarchical")
    G = problem.assemble_G()
    rng = np.random.default_rng(6)
    x = rng.standard_normal(problem.n_lambda)
    px = hier.apply(x)
    assert np.allclose(hier.apply(px), px, atol=1e-10)
    assert np.allclose(G.T @ px, 0.0, atol=1e-10)


def test_build_projector_auto_resolves_by_cluster_count():
    multi = build_problem(Workload("heat", 2, (4, 4), 3, n_clusters=4))
    single = build_problem(Workload("heat", 2, (2, 2), 3))
    assert build_projector(multi).mode == "hierarchical"
    assert build_projector(single).mode == "dense"
    assert build_projector(multi, mode="dense").mode == "dense"


def test_hierarchical_modeled_flops_beat_dense():
    problem = build_problem(Workload("heat", 2, (8, 8), 2, n_clusters=4))
    hier = build_projector(problem, mode="hierarchical")
    flops = hier.modeled_flops()
    assert flops["factor_flops"] < flops["dense_factor_flops"]
    assert flops["solve_flops"] < flops["dense_solve_flops"]
    dense = build_projector(problem, mode="dense")
    ref = dense.modeled_flops()
    assert ref["factor_flops"] == pytest.approx(ref["dense_factor_flops"])


def test_projector_stats_count_applies_and_solves():
    problem = build_problem(Workload("heat", 2, (4, 4), 3, n_clusters=4))
    hier = build_projector(problem, mode="hierarchical")
    x = np.ones(problem.n_lambda)
    hier.apply(x)
    hier.coarse_solve(np.ones(hier.n_kernel))
    stats = hier.stats()
    assert stats["mode"] == "hierarchical"
    assert stats["applies"] == 1
    assert stats["solves"] == 1  # apply()'s internal solve is not standalone
    assert stats["seconds"] >= 0.0
    assert stats["factor_seconds"] > 0.0


def test_projector_rejects_unknown_mode():
    problem = build_problem(Workload("heat", 2, (2, 2), 3))
    with pytest.raises(ValueError, match="coarse mode"):
        build_projector(problem, mode="sparse")


def test_single_cluster_hierarchical_degenerates_exactly():
    """One cluster => no interface; the two-level solve is the dense one."""
    problem = build_problem(Workload("heat", 2, (2, 2), 3))
    hier = build_projector(problem, mode="hierarchical")
    assert hier.n_interface == 0
    dense = build_projector(problem, mode="dense")
    x = np.arange(problem.n_lambda, dtype=float)
    assert np.allclose(hier.apply(x), dense.apply(x), atol=1e-12)


def test_apply_block_is_bitwise_equal_to_per_column_applies():
    problem = build_problem(Workload("heat", 2, (4, 4), 3, n_clusters=4))
    for mode in ("dense", "hierarchical"):
        projector = build_projector(problem, mode=mode)
        rng = np.random.default_rng(9)
        X = rng.standard_normal((problem.n_lambda, 4))
        block = projector.apply_block(X)
        for j in range(X.shape[1]):
            assert np.array_equal(block[:, j], projector.apply(X[:, j].copy()))


@pytest.mark.parametrize("mode", ["dense", "hierarchical"])
def test_threads_executor_applies_are_bitwise_serial(monkeypatch, mode):
    monkeypatch.setenv("REPRO_COARSE_MIN_ROWS", "1")
    problem = build_problem(Workload("heat", 2, (4, 4), 3, n_clusters=4))
    serial = build_projector(problem, mode=mode)
    rng = np.random.default_rng(10)
    x = rng.standard_normal(problem.n_lambda)
    with make_executor(ExecutionSpec("threads", 4)) as executor:
        threaded = build_projector(problem, mode=mode, executor=executor)
        assert np.array_equal(threaded.apply(x), serial.apply(x))
        X = rng.standard_normal((problem.n_lambda, 3))
        assert np.array_equal(threaded.apply_block(X), serial.apply_block(X))


def test_process_executor_applies_match_serial(monkeypatch):
    monkeypatch.setenv("REPRO_COARSE_MIN_ROWS", "1")
    problem = build_problem(Workload("heat", 2, (4, 4), 3, n_clusters=4))
    serial = build_projector(problem, mode="hierarchical")
    rng = np.random.default_rng(11)
    x = rng.standard_normal(problem.n_lambda)
    with make_executor(ExecutionSpec("processes", 2)) as executor:
        sharded = build_projector(problem, mode="hierarchical", executor=executor)
        assert np.array_equal(sharded.apply(x), serial.apply(x))


APPROACHES = [
    "impl mkl",
    "impl cholmod",
    "impl legacy",
    "impl modern",
    "expl mkl",
    "expl cholmod",
    "expl legacy",
    "expl modern",
    "expl hybrid",
]


@pytest.mark.parametrize("approach", APPROACHES)
def test_solver_hierarchical_matches_dense_per_approach(approach):
    """End to end: the solved lambda agrees <= 1e-12 on all nine approaches."""
    from repro.feti.solver import FetiSolver

    workload = Workload("heat", 2, (4, 4), 3, n_clusters=4)
    problem = build_problem(workload)
    lams = {}
    for mode in ("dense", "hierarchical"):
        solver = FetiSolver(problem, SolverSpec(approach=approach, coarse=mode))
        assert solver.projector.mode == mode
        lams[mode] = solver.solve().lam
    denom = max(np.linalg.norm(lams["dense"]), 1e-300)
    assert np.linalg.norm(lams["hierarchical"] - lams["dense"]) / denom <= 1e-12
