"""Block (multi-RHS) PCPG: lockstep equality with sequential solves.

The per-column-apply mode of :func:`repro.feti.pcpg.pcpg_block` must be
**bitwise** equal to running the scalar solver once per right-hand side;
the stacked GEMM mode trades that for fused kernels at tiny (iteration-
amplified) rounding differences.  The convergence mask must let columns
finish independently.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Session, SolverSpec, Workload
from repro.feti.pcpg import pcpg, pcpg_block

APPROACHES = [
    "impl mkl",
    "impl cholmod",
    "impl legacy",
    "impl modern",
    "expl mkl",
    "expl cholmod",
    "expl legacy",
    "expl modern",
    "expl hybrid",
]

HEAT = Workload("heat", 2, (3, 3), 6)
ELASTICITY = Workload("elasticity", 2, (3, 3), 4)


def _scaled_loads(session, workload, factors):
    base = session.base_loads(workload)
    return [[s * f for f in base] for s in factors]


# --------------------------------------------------------------------- #
# Algebra-level: synthetic SPD block problems                            #
# --------------------------------------------------------------------- #
def _random_spd(n, seed):
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((n, n))
    return A @ A.T + n * np.eye(n)


def test_block_matches_scalar_bitwise_on_synthetic_problem():
    n, k = 24, 3
    F = _random_spd(n, 7)
    rng = np.random.default_rng(11)
    ds = [rng.standard_normal(n) for _ in range(k)]
    l0s = [np.zeros(n) for _ in range(k)]
    ident = lambda x: x

    scalar = [
        pcpg(lambda v: F @ v, ident, ident, d, l0, tolerance=1e-10)
        for d, l0 in zip(ds, l0s)
    ]

    def apply_per_column(B):
        # Mirror of the default DualOperatorBase.apply_multi: one scalar
        # (GEMV) apply per contiguous column — a fused GEMM would round
        # differently and break bitwise equality.
        return np.column_stack([F @ np.ascontiguousarray(B[:, j]) for j in range(B.shape[1])])

    block = pcpg_block(apply_per_column, ident, ident, ds, l0s, tolerance=1e-10)
    for s, b in zip(scalar, block):
        assert np.array_equal(s.lam, b.lam)
        assert s.iterations == b.iterations
        assert s.converged and b.converged
        assert s.residual_norms == b.residual_norms
        assert np.array_equal(s.final_residual, b.final_residual)


def test_columns_converge_independently():
    """A well-conditioned column must not keep iterating because a slow one
    is still active, and vice versa."""
    n = 30
    easy = np.eye(n)  # converges in one iteration
    hard = _random_spd(n, 3)
    hard += np.diag(np.linspace(0, 50.0, n))  # spread spectrum
    F = np.zeros((2 * n, 2 * n))
    F[:n, :n] = easy
    F[n:, n:] = hard
    rng = np.random.default_rng(5)
    d_easy = np.concatenate([rng.standard_normal(n), np.zeros(n)])
    d_hard = np.concatenate([np.zeros(n), rng.standard_normal(n)])
    ident = lambda x: x

    applied_widths = []

    def apply_block(B):
        applied_widths.append(B.shape[1])
        return F @ B

    results = pcpg_block(
        apply_block, ident, ident, [d_easy, d_hard], [np.zeros(2 * n)] * 2,
        tolerance=1e-10,
    )
    assert all(r.converged for r in results)
    assert results[0].iterations < results[1].iterations
    # After the easy column converged, later block applies carry only the
    # hard column: the mask shrinks the block.
    assert applied_widths[0] == 2  # initial residual
    assert applied_widths[-1] == 1


def test_breakdown_fails_only_its_own_column():
    """pq <= 0 (indefinite operator) stops that column, the other finishes."""
    n = 16
    good = _random_spd(n, 1)
    bad = -np.eye(n)  # negative definite: pq < 0 on the first iteration
    F = np.zeros((2 * n, 2 * n))
    F[:n, :n] = good
    F[n:, n:] = bad
    rng = np.random.default_rng(9)
    d_good = np.concatenate([rng.standard_normal(n), np.zeros(n)])
    d_bad = np.concatenate([np.zeros(n), rng.standard_normal(n)])
    ident = lambda x: x

    results = pcpg_block(
        lambda B: F @ B, ident, ident, [d_good, d_bad], [np.zeros(2 * n)] * 2,
        tolerance=1e-10,
    )
    assert results[0].converged
    assert not results[1].converged


def test_zero_rhs_column_converges_immediately():
    n = 12
    F = _random_spd(n, 2)
    rng = np.random.default_rng(4)
    ident = lambda x: x
    results = pcpg_block(
        lambda B: F @ B,
        ident,
        ident,
        [np.zeros(n), rng.standard_normal(n)],
        [np.zeros(n)] * 2,
        tolerance=1e-10,
    )
    assert results[0].converged and results[0].iterations == 0
    assert results[1].converged and results[1].iterations > 0


def test_mismatched_column_counts_raise():
    with pytest.raises(ValueError, match="initial iterates"):
        pcpg_block(
            lambda B: B, lambda x: x, lambda x: x, [np.zeros(3)], []
        )


def test_empty_block_returns_empty():
    assert pcpg_block(lambda B: B, lambda x: x, lambda x: x, [], []) == []


# --------------------------------------------------------------------- #
# Solver-level: solve_many vs sequential solves                          #
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("workload", [HEAT, ELASTICITY], ids=["heat", "elasticity"])
def test_solve_many_default_is_bitwise_equal_to_sequential(workload):
    with Session(SolverSpec(approach="expl mkl")) as session:
        solver = session.solver(workload)
        solver.preprocess()
        loads = _scaled_loads(session, workload, [1.0, 1.5, 0.25])
        many = solver.solve_many(loads, reuse_preprocessing=True)
        for cols, block_sol in zip(loads, many):
            for sub, f in zip(solver.problem.subdomains, cols):
                sub.f = f
            ref = solver.solve(reuse_preprocessing=True)
            assert np.array_equal(block_sol.lam, ref.lam)
            assert np.array_equal(block_sol.alpha, ref.alpha)
            for a, b in zip(block_sol.primal, ref.primal):
                assert np.array_equal(a, b)
            assert block_sol.iterations == ref.iterations
        base = session.base_loads(workload)
        for sub, f in zip(solver.problem.subdomains, base):
            sub.f = f.copy()


@pytest.mark.parametrize("approach", APPROACHES)
def test_solve_many_all_approaches_within_1e12_per_column(approach):
    """Block-PCPG vs N sequential solves across every Table-III approach.

    The default per-column path is exactly sequential; the assertion is the
    issue's 1e-12 bound, met with zero slack.
    """
    with Session(SolverSpec(approach=approach)) as session:
        ref = session.solve(HEAT)
        solver = session.solver(HEAT)
        many = solver.solve_many([None, None], reuse_preprocessing=True)
        for sol in many:
            denom = np.linalg.norm(ref.lam)
            assert np.linalg.norm(sol.lam - ref.lam) <= 1e-12 * max(denom, 1.0)
            assert sol.iterations == ref.iterations


def test_solve_many_stacked_matches_per_column_closely():
    with Session(SolverSpec(approach="expl mkl")) as session:
        solver = session.solver(HEAT)
        solver.preprocess()
        loads = _scaled_loads(session, HEAT, [1.0, 2.0])
        plain = solver.solve_many(loads, reuse_preprocessing=True)
        stacked = solver.solve_many(loads, stacked=True, reuse_preprocessing=True)
        for a, b in zip(plain, stacked):
            denom = max(np.linalg.norm(a.lam), 1e-300)
            assert np.linalg.norm(b.lam - a.lam) / denom <= 1e-9
            assert b.converged


def test_solve_many_restores_pristine_loads():
    with Session() as session:
        solver = session.solver(HEAT)
        before = [sub.f.copy() for sub in solver.problem.subdomains]
        loads = _scaled_loads(session, HEAT, [3.0, 5.0])
        solver.solve_many(loads)
        for sub, f in zip(solver.problem.subdomains, before):
            assert np.array_equal(sub.f, f)


def test_session_solve_many_counts_stacked_stats():
    with Session() as session:
        solutions = session.solve_many(HEAT, [None, None, None])
        assert len(solutions) == 3
        stats = session.cache_stats()
        assert stats["stacked_solves"] == 1
        assert stats["stacked_columns"] == 3
        assert stats["solves"] == 3


def test_block_projection_kwargs_are_bitwise_equal_to_per_column():
    """pcpg_block with apply_P_block/apply_M_block (stacked per-column
    applies, as the solver wires the projector and preconditioner) must be
    bitwise identical to the per-column default path."""
    n, k = 24, 3
    F = _random_spd(n, 21)
    rng = np.random.default_rng(22)
    ds = [rng.standard_normal(n) for _ in range(k)]
    l0s = [np.zeros(n) for _ in range(k)]
    ident = lambda x: x

    def ident_block(X):
        return np.column_stack([np.asarray(X[:, j]) for j in range(X.shape[1])])

    reference = pcpg_block(lambda X: F @ X, ident, ident, ds, l0s, tolerance=1e-10)
    blocked = pcpg_block(
        lambda X: F @ X,
        ident,
        ident,
        ds,
        l0s,
        tolerance=1e-10,
        apply_P_block=ident_block,
        apply_M_block=ident_block,
    )
    for ref, blk in zip(reference, blocked):
        assert blk.iterations == ref.iterations
        assert np.array_equal(blk.lam, ref.lam)


def test_block_projection_kwargs_with_real_projector():
    """The solver's wiring: a hierarchical Projector's apply_block feeding
    pcpg_block reproduces the per-column projector applies bitwise."""
    from repro.api.workload import build_problem
    from repro.feti.projector import build_projector

    problem = build_problem(Workload("heat", 2, (4, 4), 3, n_clusters=4))
    projector = build_projector(problem, mode="hierarchical")
    n = problem.n_lambda
    F = _random_spd(n, 23)
    rng = np.random.default_rng(24)
    ds = [rng.standard_normal(n) for _ in range(2)]
    l0s = [np.zeros(n) for _ in range(2)]
    ident = lambda x: x

    reference = pcpg_block(
        lambda X: F @ X, projector.apply, ident, ds, l0s, tolerance=1e-8
    )
    blocked = pcpg_block(
        lambda X: F @ X,
        projector.apply,
        ident,
        ds,
        l0s,
        tolerance=1e-8,
        apply_P_block=projector.apply_block,
    )
    for ref, blk in zip(reference, blocked):
        assert blk.iterations == ref.iterations
        assert np.array_equal(blk.lam, ref.lam)
