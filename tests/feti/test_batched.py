"""Tests of the batched subdomain execution engine.

The engine is a pure execution-strategy change: for every approach the
batched apply must produce the same dual vectors as the per-subdomain
reference loop, charge the same simulated time, and the index-map /
block-packing primitives must round-trip exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.decomposition.gluing import flat_scatter_maps
from repro.feti.config import (
    AssemblyConfig,
    DualOperatorApproach,
    ScatterGatherDevice,
)
from repro.feti.operators import make_dual_operator
from repro.feti.operators.batch import BatchedDenseApply, FlatIndexMap


# --------------------------------------------------------------------- #
# FlatIndexMap primitives                                                #
# --------------------------------------------------------------------- #
def test_flat_scatter_maps_concatenates_ids():
    ids = [np.array([0, 3, 5]), np.array([], dtype=np.int64), np.array([2, 4])]
    flat, offsets = flat_scatter_maps(ids)
    assert flat.tolist() == [0, 3, 5, 2, 4]
    assert offsets.tolist() == [0, 3, 3, 5]


def test_flat_scatter_maps_empty():
    flat, offsets = flat_scatter_maps([])
    assert flat.size == 0
    assert offsets.tolist() == [0]


def test_flat_index_map_gather_matches_per_item_scatter():
    rng = np.random.default_rng(3)
    ids = [rng.choice(50, size=n, replace=False) for n in (7, 0, 12, 3)]
    index_map = FlatIndexMap(ids)
    source = rng.standard_normal(50)
    gathered = index_map.gather(source)
    expected = np.concatenate([source[i] for i in ids])
    np.testing.assert_array_equal(gathered, expected)
    for i, view in enumerate(index_map.split(gathered)):
        np.testing.assert_array_equal(view, source[ids[i]])
        assert view.shape == (len(ids[i]),)


def test_flat_index_map_scatter_add_matches_np_add_at():
    rng = np.random.default_rng(4)
    # Overlapping ids: the accumulation must handle duplicates like np.add.at.
    ids = [np.array([0, 1, 2]), np.array([2, 3]), np.array([0, 3])]
    index_map = FlatIndexMap(ids)
    values = rng.standard_normal(index_map.total)
    batched = np.zeros(6)
    index_map.scatter_add(batched, values)
    looped = np.zeros(6)
    for i, sub_ids in enumerate(ids):
        np.add.at(looped, sub_ids, values[index_map.slice_of(i)])
    np.testing.assert_allclose(batched, looped, atol=1e-15)


def test_flat_index_map_pad_unpad_roundtrip():
    ids = [np.arange(4), np.arange(2), np.arange(6)]
    index_map = FlatIndexMap(ids)
    values = np.arange(index_map.total, dtype=float) + 1.0
    padded = index_map.pad(values)
    assert padded.shape == (3, 6)
    # Padding lanes stay zero.
    assert padded[0, 4:].tolist() == [0.0, 0.0]
    assert padded[1, 2:].tolist() == [0.0] * 4
    np.testing.assert_array_equal(index_map.unpad(padded), values)


def test_batched_dense_apply_matches_per_block_gemv():
    rng = np.random.default_rng(5)
    sizes = (4, 1, 7, 3)
    ids = [rng.choice(40, size=n, replace=False) for n in sizes]
    index_map = FlatIndexMap(ids)
    dense = BatchedDenseApply(index_map)
    blocks = [rng.standard_normal((n, n)) for n in sizes]
    for i, block in enumerate(blocks):
        dense.set_block(i, block)
    p = rng.standard_normal(index_map.total)
    q = dense.matvec(p)
    expected = np.concatenate(
        [blocks[i] @ p[index_map.slice_of(i)] for i in range(len(sizes))]
    )
    np.testing.assert_allclose(q, expected, atol=1e-12)


def test_batched_dense_apply_rejects_wrong_block_shape():
    index_map = FlatIndexMap([np.arange(3)])
    dense = BatchedDenseApply(index_map)
    with pytest.raises(ValueError):
        dense.set_block(0, np.zeros((2, 2)))


# --------------------------------------------------------------------- #
# Operator-level equivalence                                             #
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("approach", list(DualOperatorApproach))
def test_batched_apply_matches_looped_apply(
    heat_problem_2d, approach, small_machine_config
):
    """Every approach: batched and looped paths agree on values AND timing."""
    operators = {}
    for batched in (False, True):
        operator = make_dual_operator(
            approach,
            heat_problem_2d,
            machine_config=small_machine_config,
            batched=batched,
        )
        operator.prepare()
        operator.preprocess()
        operators[batched] = operator

    rng = np.random.default_rng(11)
    for _ in range(3):
        x = rng.standard_normal(heat_problem_2d.n_lambda)
        q_looped = operators[False].apply(x)
        q_batched = operators[True].apply(x)
        np.testing.assert_allclose(q_batched, q_looped, atol=1e-10)

    for name in ("preparation", "preprocessing"):
        assert operators[True].ledger.total(name) == pytest.approx(
            operators[False].ledger.total(name), rel=1e-12
        )
    assert operators[True].ledger.mean("apply") == pytest.approx(
        operators[False].ledger.mean("apply"), rel=1e-12
    )
    looped_breakdown = operators[False].ledger.last("apply").breakdown
    batched_breakdown = operators[True].ledger.last("apply").breakdown
    assert set(batched_breakdown) == set(looped_breakdown)
    for key, value in looped_breakdown.items():
        assert batched_breakdown[key] == pytest.approx(value, rel=1e-12)


def test_batched_dual_rhs_matches_looped(heat_problem_2d, small_machine_config):
    operators = {}
    for batched in (False, True):
        operator = make_dual_operator(
            DualOperatorApproach.IMPLICIT_CHOLMOD,
            heat_problem_2d,
            machine_config=small_machine_config,
            batched=batched,
        )
        operator.preprocess()
        operators[batched] = operator
    np.testing.assert_allclose(
        operators[True].dual_rhs(), operators[False].dual_rhs(), atol=1e-12
    )


def test_engine_groups_subdomains_by_cluster(heat_problem_2d, small_machine_config):
    operator = make_dual_operator(
        DualOperatorApproach.EXPLICIT_MKL,
        heat_problem_2d,
        machine_config=small_machine_config,
    )
    engine = operator.batch_engine
    grouped = []
    for cluster, subs in operator.iter_clusters():
        batch = engine.cluster(cluster.cluster_id)
        assert batch.subdomain_indices == [s.index for s in subs]
        assert batch.dual_map.n_items == len(subs)
        assert batch.dual_map.total == sum(s.n_lambda for s in subs)
        for i, sub in enumerate(subs):
            assert batch.position_of(sub.index) == i
        grouped.extend(batch.subdomain_indices)
    assert sorted(grouped) == [s.index for s in heat_problem_2d.subdomains]
    # The global map mirrors the gluing data's cached flat arrays.
    flat, offsets = heat_problem_2d.gluing.scatter_maps()
    np.testing.assert_array_equal(engine.global_map.flat_ids, flat)
    np.testing.assert_array_equal(engine.global_map.offsets, offsets)


def test_gluing_scatter_maps_cached(heat_problem_2d):
    first = heat_problem_2d.gluing.scatter_maps()
    second = heat_problem_2d.gluing.scatter_maps()
    assert first[0] is second[0] and first[1] is second[1]
    expected = np.concatenate(
        [s.lambda_ids for s in heat_problem_2d.gluing.per_subdomain]
    )
    np.testing.assert_array_equal(first[0], expected)


@pytest.mark.parametrize("scatter", [ScatterGatherDevice.CPU, ScatterGatherDevice.GPU])
@pytest.mark.parametrize("symmetric", [False, True])
def test_batched_gpu_apply_matches_looped_for_nondefault_configs(
    heat_problem_2d, small_machine_config, scatter, symmetric
):
    """Both GPU apply paths and both MV kernels: values AND timing agree."""
    config = AssemblyConfig(scatter_gather=scatter, apply_symmetric=symmetric)
    operators = {}
    for batched in (False, True):
        operator = make_dual_operator(
            DualOperatorApproach.EXPLICIT_GPU_MODERN,
            heat_problem_2d,
            machine_config=small_machine_config,
            assembly_config=config,
            batched=batched,
        )
        operator.preprocess()
        operators[batched] = operator
    rng = np.random.default_rng(23)
    x = rng.standard_normal(heat_problem_2d.n_lambda)
    np.testing.assert_allclose(
        operators[True].apply(x), operators[False].apply(x), atol=1e-10
    )
    looped_phase = operators[False].ledger.last("apply")
    batched_phase = operators[True].ledger.last("apply")
    assert batched_phase.simulated_seconds == pytest.approx(
        looped_phase.simulated_seconds, rel=1e-12
    )
    assert set(batched_phase.breakdown) == set(looped_phase.breakdown)
    for key, value in looped_phase.breakdown.items():
        assert batched_phase.breakdown[key] == pytest.approx(value, rel=1e-12)


def test_pad_reused_out_buffer_rezeroes_padding_lanes():
    index_map = FlatIndexMap([np.arange(2), np.arange(4)])
    out = np.full((2, 4), 7.0)
    index_map.pad(np.arange(6, dtype=float), out=out)
    # Stale values in the padding lanes must not survive a reuse.
    assert out[0, 2:].tolist() == [0.0, 0.0]
    np.testing.assert_array_equal(index_map.unpad(out), np.arange(6, dtype=float))
