"""Tests of the PCPG iteration on synthetic dual systems."""

from __future__ import annotations

import numpy as np
import pytest

from repro.feti.pcpg import PcpgResult, pcpg


def _identity(x):
    return x


def _make_spd(n, seed=0):
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((n, n))
    return A @ A.T + n * np.eye(n)


def test_pcpg_solves_unconstrained_spd_system():
    n = 40
    F = _make_spd(n)
    d = np.arange(1.0, n + 1.0)
    result = pcpg(
        apply_F=lambda x: F @ x,
        apply_P=_identity,
        apply_M=_identity,
        d=d,
        lambda_0=np.zeros(n),
        tolerance=1e-12,
        max_iterations=200,
    )
    assert result.converged
    assert np.allclose(F @ result.lam, d, atol=1e-6)
    assert result.iterations <= n + 2
    assert result.relative_residual < 1e-10


def test_pcpg_with_projector_stays_in_subspace():
    """With P projecting onto a subspace, iterates stay feasible."""
    n = 30
    F = _make_spd(n, seed=1)
    rng = np.random.default_rng(2)
    G = rng.standard_normal((n, 3))
    P = np.eye(n) - G @ np.linalg.solve(G.T @ G, G.T)
    d = rng.standard_normal(n)
    lam0 = G @ np.linalg.solve(G.T @ G, rng.standard_normal(3))
    result = pcpg(
        apply_F=lambda x: F @ x,
        apply_P=lambda x: P @ x,
        apply_M=_identity,
        d=d,
        lambda_0=lam0,
        tolerance=1e-11,
        max_iterations=200,
    )
    assert result.converged
    # the constraint G^T lambda = G^T lambda_0 is preserved by the projection
    assert np.allclose(G.T @ result.lam, G.T @ lam0, atol=1e-8)
    # the projected residual vanishes
    assert np.allclose(P @ (d - F @ result.lam), 0.0, atol=1e-6)


def test_preconditioner_reduces_iteration_count():
    n = 60
    rng = np.random.default_rng(3)
    diag = np.logspace(0, 4, n)
    F = np.diag(diag)
    d = rng.standard_normal(n)
    opts = dict(tolerance=1e-10, max_iterations=500)
    plain = pcpg(lambda x: F @ x, _identity, _identity, d, np.zeros(n), **opts)
    precond = pcpg(
        lambda x: F @ x, _identity, lambda x: x / diag, d, np.zeros(n), **opts
    )
    assert precond.converged
    assert precond.iterations < plain.iterations


def test_zero_rhs_converges_immediately():
    n = 10
    F = _make_spd(n)
    result = pcpg(lambda x: F @ x, _identity, _identity, np.zeros(n), np.zeros(n))
    assert result.converged
    assert result.iterations == 0
    assert np.allclose(result.lam, 0.0)


def test_max_iterations_reported_as_not_converged():
    n = 50
    diag = np.logspace(0, 8, n)
    F = np.diag(diag)
    d = np.ones(n)
    result = pcpg(
        lambda x: F @ x, _identity, _identity, d, np.zeros(n),
        tolerance=1e-14, max_iterations=3,
    )
    assert not result.converged
    assert result.iterations == 3
    assert len(result.residual_norms) >= 3


def test_callback_invoked_each_iteration():
    n = 20
    F = _make_spd(n, seed=5)
    calls = []
    pcpg(
        lambda x: F @ x, _identity, _identity, np.ones(n), np.zeros(n),
        tolerance=1e-10, max_iterations=100,
        callback=lambda k, norm: calls.append((k, norm)),
    )
    assert len(calls) >= 1
    assert calls[0][0] == 1
    assert all(norm >= 0 for _, norm in calls)


def test_indefinite_operator_detected():
    n = 10
    F = -np.eye(n)
    result = pcpg(lambda x: F @ x, _identity, _identity, np.ones(n), np.zeros(n))
    assert not result.converged


def test_result_dataclass_fields():
    result = PcpgResult(lam=np.zeros(3), iterations=0, converged=True)
    assert result.relative_residual == 0.0
