"""Tests of the dual-operator implementations (Table III).

The most important property: all nine approaches evaluate the *same*
operator ``F = B K⁺ Bᵀ``.  The tests compare every approach against a dense
reference operator built directly from the subdomain data, and check the
timing bookkeeping the benchmark harness relies on.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse.linalg as spla

from repro.cluster.topology import MachineConfig
from repro.feti.config import (
    AssemblyConfig,
    DualOperatorApproach,
    FactorStorage,
    Path,
    RhsOrder,
    ScatterGatherDevice,
)
from repro.feti.operators import make_dual_operator
from repro.feti.operators.explicit_cpu import ExplicitCpuDualOperator


def dense_reference_F(problem) -> np.ndarray:
    """Dense ``F = Σᵢ B̃ᵢ Kᵢ⁺ B̃ᵢᵀ`` scattered into the global dual space."""
    F = np.zeros((problem.n_lambda, problem.n_lambda))
    for sub in problem.subdomains:
        K_reg_inv_Bt = spla.spsolve(sub.K_reg.tocsc(), sub.B.T.toarray())
        local = sub.B @ K_reg_inv_Bt
        F[np.ix_(sub.lambda_ids, sub.lambda_ids)] += local
    return F


@pytest.fixture(scope="module")
def reference_F(heat_problem_2d):
    return dense_reference_F(heat_problem_2d)


@pytest.mark.parametrize("approach", list(DualOperatorApproach))
def test_every_approach_computes_the_same_operator(
    heat_problem_2d, reference_F, approach, small_machine_config
):
    operator = make_dual_operator(
        approach, heat_problem_2d, machine_config=small_machine_config
    )
    operator.prepare()
    operator.preprocess()
    rng = np.random.default_rng(7)
    for _ in range(3):
        x = rng.standard_normal(heat_problem_2d.n_lambda)
        assert np.allclose(operator.apply(x), reference_F @ x, atol=1e-8)


@pytest.mark.parametrize(
    "approach",
    [
        DualOperatorApproach.IMPLICIT_MKL,
        DualOperatorApproach.EXPLICIT_MKL,
        DualOperatorApproach.EXPLICIT_GPU_LEGACY,
        DualOperatorApproach.EXPLICIT_HYBRID,
    ],
)
def test_operator_is_symmetric_positive_semidefinite(
    heat_problem_2d, approach, small_machine_config
):
    operator = make_dual_operator(
        approach, heat_problem_2d, machine_config=small_machine_config
    )
    operator.preprocess()
    n = heat_problem_2d.n_lambda
    F = np.column_stack([operator.apply(np.eye(n)[:, j]) for j in range(n)])
    assert np.allclose(F, F.T, atol=1e-8)
    assert np.linalg.eigvalsh(F).min() > -1e-8


@pytest.mark.parametrize("path", [Path.SYRK, Path.TRSM])
@pytest.mark.parametrize("storage", [FactorStorage.SPARSE, FactorStorage.DENSE])
@pytest.mark.parametrize(
    "scatter", [ScatterGatherDevice.CPU, ScatterGatherDevice.GPU]
)
def test_explicit_gpu_all_assembly_configurations_agree(
    heat_problem_2d, reference_F, small_machine_config, path, storage, scatter
):
    """Every Table-I configuration assembles the same F̃ᵢ (only timing differs)."""
    config = AssemblyConfig(
        path=path,
        forward_factor_storage=storage,
        backward_factor_storage=storage,
        rhs_order=RhsOrder.ROW_MAJOR,
        scatter_gather=scatter,
    )
    operator = make_dual_operator(
        DualOperatorApproach.EXPLICIT_GPU_MODERN,
        heat_problem_2d,
        machine_config=small_machine_config,
        assembly_config=config,
    )
    operator.preprocess()
    rng = np.random.default_rng(1)
    x = rng.standard_normal(heat_problem_2d.n_lambda)
    assert np.allclose(operator.apply(x), reference_F @ x, atol=1e-8)


def test_explicit_cpu_local_operators_match_schur(heat_problem_2d, small_machine_config):
    operator = make_dual_operator(
        DualOperatorApproach.EXPLICIT_MKL,
        heat_problem_2d,
        machine_config=small_machine_config,
    )
    assert isinstance(operator, ExplicitCpuDualOperator)
    operator.preprocess()
    sub = heat_problem_2d.subdomains[0]
    F_local = operator.local_F[sub.index]
    expected = sub.B @ spla.spsolve(sub.K_reg.tocsc(), sub.B.T.toarray())
    assert np.allclose(F_local, expected, atol=1e-8)


def test_apply_requires_preprocess(heat_problem_2d, small_machine_config):
    operator = make_dual_operator(
        DualOperatorApproach.IMPLICIT_MKL,
        heat_problem_2d,
        machine_config=small_machine_config,
    )
    with pytest.raises(RuntimeError):
        operator.apply(np.zeros(heat_problem_2d.n_lambda))
    operator.preprocess()
    with pytest.raises(ValueError):
        operator.apply(np.zeros(3))


def test_dual_rhs_and_kplus(heat_problem_2d, small_machine_config):
    operator = make_dual_operator(
        DualOperatorApproach.IMPLICIT_CHOLMOD,
        heat_problem_2d,
        machine_config=small_machine_config,
    )
    operator.preprocess()
    d = operator.dual_rhs()
    # reference: d = B K+ f - c
    expected = -heat_problem_2d.c.copy()
    for sub in heat_problem_2d.subdomains:
        z = spla.spsolve(sub.K_reg.tocsc(), sub.f)
        np.add.at(expected, sub.lambda_ids, sub.B @ z)
    assert np.allclose(d, expected, atol=1e-8)
    sub = heat_problem_2d.subdomains[0]
    z = operator.kplus_solve(sub.index, sub.f)
    assert np.allclose(sub.K_reg @ z, sub.f, atol=1e-8)


def test_timing_ledger_records_phases(heat_problem_2d, small_machine_config):
    operator = make_dual_operator(
        DualOperatorApproach.EXPLICIT_GPU_MODERN,
        heat_problem_2d,
        machine_config=small_machine_config,
    )
    operator.prepare()
    operator.preprocess()
    operator.apply(np.zeros(heat_problem_2d.n_lambda))
    operator.apply(np.zeros(heat_problem_2d.n_lambda))
    assert operator.preparation_time > 0
    assert operator.preprocessing_time > 0
    assert operator.application_time > 0
    assert operator.ledger.count("apply") == 2
    assert operator.preprocessing_time_per_subdomain() > 0
    assert operator.application_time_per_subdomain() > 0
    breakdown = operator.ledger.last("preprocessing").breakdown
    assert "trsm" in breakdown and breakdown["trsm"] > 0


def test_gpu_memory_is_actually_used(heat_problem_2d, small_machine_config):
    operator = make_dual_operator(
        DualOperatorApproach.EXPLICIT_GPU_MODERN,
        heat_problem_2d,
        machine_config=small_machine_config,
    )
    operator.preprocess()
    for cluster, subs in operator.iter_clusters():
        if not subs:
            continue
        assert cluster.device.memory.used_bytes > 0
        arena = cluster.device.require_temporary()
        assert arena.allocation_count > 0
        assert arena.used_bytes == 0  # everything released after preprocessing


def test_explicit_approaches_apply_faster_than_implicit_on_gpu(
    heat_problem_3d, small_machine_config
):
    """Sanity of the cost model: explicit GPU application beats implicit GPU."""
    implicit = make_dual_operator(
        DualOperatorApproach.IMPLICIT_GPU_MODERN,
        heat_problem_3d,
        machine_config=small_machine_config,
    )
    explicit = make_dual_operator(
        DualOperatorApproach.EXPLICIT_GPU_MODERN,
        heat_problem_3d,
        machine_config=small_machine_config,
    )
    implicit.preprocess()
    explicit.preprocess()
    x = np.zeros(heat_problem_3d.n_lambda)
    implicit.apply(x)
    explicit.apply(x)
    assert explicit.application_time < implicit.application_time
    # and the explicit preprocessing is the more expensive phase
    assert explicit.preprocessing_time > implicit.preprocessing_time
