"""Tests of the configuration enums and dataclasses (Tables I and III)."""

from __future__ import annotations

import itertools

import pytest

from repro.feti.config import (
    ASSEMBLY_PARAMETER_SPACE,
    AssemblyConfig,
    CudaLibraryVersion,
    DualOperatorApproach,
    FactorOrder,
    FactorStorage,
    Path,
    RhsOrder,
    ScatterGatherDevice,
)
from repro.gpu.costmodel import CudaVersion


def test_table_one_parameter_space_is_complete():
    """Table I lists 7 parameters; the sweep space contains exactly them."""
    assert set(ASSEMBLY_PARAMETER_SPACE) == {
        "path",
        "forward_factor_storage",
        "backward_factor_storage",
        "forward_factor_order",
        "backward_factor_order",
        "rhs_order",
        "scatter_gather",
    }
    sizes = [len(v) for v in ASSEMBLY_PARAMETER_SPACE.values()]
    assert all(size == 2 for size in sizes)
    # full cartesian size: 2^7 = 128 raw combinations
    assert len(list(itertools.product(*ASSEMBLY_PARAMETER_SPACE.values()))) == 128


def test_assembly_config_defaults_and_description():
    cfg = AssemblyConfig()
    assert cfg.path is Path.SYRK
    assert cfg.scatter_gather is ScatterGatherDevice.GPU
    text = cfg.describe()
    assert "syrk" in text and "gpu" in text


def test_assembly_config_is_hashable_and_frozen():
    cfg = AssemblyConfig()
    assert hash(cfg) == hash(AssemblyConfig())
    with pytest.raises(AttributeError):
        cfg.path = Path.TRSM  # type: ignore[misc]


def test_table_three_has_nine_approaches():
    assert len(DualOperatorApproach) == 9
    names = {a.value for a in DualOperatorApproach}
    assert names == {
        "impl mkl", "impl cholmod", "impl legacy", "impl modern",
        "expl mkl", "expl cholmod", "expl legacy", "expl modern", "expl hybrid",
    }
    for approach in DualOperatorApproach:
        assert isinstance(approach.description, str) and approach.description


def test_approach_flags():
    assert DualOperatorApproach.EXPLICIT_GPU_MODERN.is_explicit
    assert not DualOperatorApproach.IMPLICIT_MKL.is_explicit
    assert DualOperatorApproach.EXPLICIT_HYBRID.uses_gpu
    assert not DualOperatorApproach.EXPLICIT_CHOLMOD.uses_gpu
    assert DualOperatorApproach.IMPLICIT_MKL.cuda_library is None
    assert (
        DualOperatorApproach.EXPLICIT_GPU_LEGACY.cuda_library
        is CudaLibraryVersion.LEGACY
    )
    assert (
        DualOperatorApproach.EXPLICIT_HYBRID.cuda_library is CudaLibraryVersion.MODERN
    )


def test_cuda_library_maps_to_cost_model_version():
    assert CudaLibraryVersion.LEGACY.cuda_version is CudaVersion.LEGACY
    assert CudaLibraryVersion.MODERN.cuda_version is CudaVersion.MODERN


def test_enum_values_match_paper_vocabulary():
    assert FactorStorage.SPARSE.value == "sparse"
    assert FactorStorage.DENSE.value == "dense"
    assert FactorOrder.ROW_MAJOR.value == "row-major"
    assert RhsOrder.COL_MAJOR.value == "col-major"
    assert Path.TRSM.value == "trsm"
