"""Tests of the machine / cluster topology."""

from __future__ import annotations

import pytest

from repro.cluster.topology import ClusterResources, Machine, MachineConfig
from repro.decomposition import decompose_box
from repro.gpu.costmodel import CudaVersion


def test_machine_config_defaults_match_karolina_numa_domain():
    config = MachineConfig()
    assert config.threads_per_cluster == 16
    assert config.streams_per_cluster == 16
    assert config.gpu_memory_bytes == 40 * 1024**3


def test_with_cuda_creates_modified_copy():
    config = MachineConfig()
    legacy = config.with_cuda(CudaVersion.LEGACY)
    assert legacy.cuda_version is CudaVersion.LEGACY
    assert config.cuda_version is CudaVersion.MODERN
    assert legacy.threads_per_cluster == config.threads_per_cluster


def test_machine_builds_one_cluster_per_decomposition_cluster():
    dec = decompose_box(2, 2, 2, order=1, n_clusters=4)
    machine = Machine.for_decomposition(dec)
    assert machine.n_clusters == 4
    assert machine.cluster(2).cluster_id == 2
    with pytest.raises(ValueError):
        Machine(n_clusters=0)


def test_cluster_device_is_lazy_and_configured():
    config = MachineConfig(threads_per_cluster=4, streams_per_cluster=8,
                           cuda_version=CudaVersion.LEGACY)
    cluster = ClusterResources(cluster_id=0, config=config)
    assert not cluster.has_device
    device = cluster.device
    assert cluster.has_device
    assert device.cuda_version is CudaVersion.LEGACY
    assert len(cluster.streams) == 8
    assert cluster.n_threads == 4
    assert cluster.cpu is config.cpu_cost_model


def test_stream_round_robin():
    cluster = ClusterResources(0, MachineConfig(streams_per_cluster=3))
    assert cluster.stream_for(0) is cluster.streams[0]
    assert cluster.stream_for(4) is cluster.streams[1]


def test_reset_gpu_timeline():
    cluster = ClusterResources(0, MachineConfig(streams_per_cluster=2))
    cluster.streams[0].submit("k", 1.0, 0.0)
    cluster.reset_gpu_timeline()
    assert cluster.streams[0].tail == 0.0
    # resetting a cluster that never created a device is a no-op
    ClusterResources(1, MachineConfig()).reset_gpu_timeline()


@pytest.mark.parametrize("field", ["threads_per_cluster", "streams_per_cluster"])
@pytest.mark.parametrize("value", [0, -1, -16])
def test_machine_config_rejects_non_positive_worker_counts(field, value):
    """Impossible resource counts fail at construction with a clear message,
    not deep inside the engine (satellite of the runtime PR)."""
    with pytest.raises(ValueError, match=field):
        MachineConfig(**{field: value})


@pytest.mark.parametrize("field", ["threads_per_cluster", "streams_per_cluster"])
def test_machine_config_rejects_non_integer_worker_counts(field):
    with pytest.raises(ValueError, match="integer"):
        MachineConfig(**{field: 2.5})
    with pytest.raises(ValueError, match="integer"):
        MachineConfig(**{field: True})


def test_machine_config_rejects_non_positive_gpu_memory():
    with pytest.raises(ValueError, match="gpu_memory_bytes"):
        MachineConfig(gpu_memory_bytes=0)


# --------------------------------------------------------------------- #
# for_decomposition cluster-assignment validation                        #
# --------------------------------------------------------------------- #
class _FakeSub:
    def __init__(self, cluster):
        self.cluster = cluster


class _FakeDecomposition:
    def __init__(self, n_clusters, clusters):
        self.n_clusters = n_clusters
        self.subdomains = [_FakeSub(c) for c in clusters]


def test_for_decomposition_rejects_more_clusters_than_subdomains():
    dec = _FakeDecomposition(4, [0, 1])
    with pytest.raises(ValueError, match="lower n_clusters or refine"):
        Machine.for_decomposition(dec)


def test_for_decomposition_rejects_stray_cluster_ids():
    dec = _FakeDecomposition(2, [0, 1, 5, 1])
    with pytest.raises(ValueError, match=r"\[5\] outside"):
        Machine.for_decomposition(dec)


def test_for_decomposition_rejects_empty_clusters():
    dec = _FakeDecomposition(3, [0, 0, 2, 2])
    with pytest.raises(ValueError, match=r"\[1\] own no subdomains"):
        Machine.for_decomposition(dec)


def test_for_decomposition_accepts_balanced_assignment():
    dec = _FakeDecomposition(2, [0, 0, 1, 1])
    machine = Machine.for_decomposition(dec)
    assert machine.n_clusters == 2
