"""Shared fixtures of the test suite.

The fixtures keep the problems intentionally small (a handful of subdomains
with a few dozen DOFs each) so that the whole suite runs in seconds while
still exercising every code path: 2D/3D, linear/quadratic elements, heat
transfer and elasticity, CPU and simulated-GPU dual operators.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.cluster.topology import MachineConfig
from repro.decomposition import decompose_box
from repro.fem.elasticity import LinearElasticityProblem
from repro.fem.heat import HeatTransferProblem
from repro.feti.problem import FetiProblem


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """Deterministic random generator shared by the suite."""
    return np.random.default_rng(20250612)


@pytest.fixture(scope="session")
def heat() -> HeatTransferProblem:
    """A heat-transfer physics object."""
    return HeatTransferProblem(conductivity=1.0, source=1.0)


@pytest.fixture(scope="session")
def elasticity() -> LinearElasticityProblem:
    """A linear-elasticity physics object."""
    return LinearElasticityProblem(young=1.0, poisson=0.3)


@pytest.fixture(scope="session")
def small_machine_config() -> MachineConfig:
    """Per-cluster resources small enough for fast tests (4 threads/streams)."""
    return MachineConfig(threads_per_cluster=4, streams_per_cluster=4)


@pytest.fixture(scope="session")
def heat_problem_2d(heat) -> FetiProblem:
    """A 2×2-subdomain 2D heat problem (linear triangles)."""
    dec = decompose_box(2, 2, 4, order=1, n_clusters=2)
    return FetiProblem.from_physics(heat, dec, dirichlet_faces=("xmin",))


@pytest.fixture(scope="session")
def heat_problem_3d(heat) -> FetiProblem:
    """A 2×2×1-subdomain 3D heat problem (linear tetrahedra)."""
    dec = decompose_box(3, (2, 2, 1), 2, order=1, n_clusters=1)
    return FetiProblem.from_physics(heat, dec, dirichlet_faces=("zmin",))


@pytest.fixture(scope="session")
def elasticity_problem_2d(elasticity) -> FetiProblem:
    """A 2×1-subdomain 2D elasticity problem (quadratic triangles)."""
    dec = decompose_box(2, (2, 1), 2, order=2, n_clusters=1)
    return FetiProblem.from_physics(elasticity, dec, dirichlet_faces=("xmin",))


def random_spd_matrix(
    n: int, density: float, rng: np.random.Generator
) -> sp.csr_matrix:
    """A random sparse symmetric positive definite matrix (test helper)."""
    a = sp.random(n, n, density=density, random_state=rng, data_rvs=rng.standard_normal)
    a = (a + a.T).tocsr()
    return (a + sp.identity(n) * (abs(a).sum(axis=1).max() + 1.0)).tocsr()


@pytest.fixture(scope="session")
def spd_matrix_factory(rng):
    """Factory fixture producing random SPD matrices."""

    def factory(n: int, density: float = 0.1) -> sp.csr_matrix:
        return random_spd_matrix(n, density, rng)

    return factory
