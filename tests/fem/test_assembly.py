"""Tests of the FEM assembly kernels (heat and elasticity)."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse.linalg as spla

from repro.fem.assembly import (
    assemble_elasticity_load,
    assemble_elasticity_stiffness,
    assemble_scalar_load,
    assemble_scalar_stiffness,
    element_geometry,
)
from repro.fem.elasticity import LinearElasticityProblem
from repro.fem.heat import HeatTransferProblem
from repro.fem.mesh import structured_mesh


CASES = [(2, 1), (2, 2), (3, 1), (3, 2)]


@pytest.mark.parametrize(("dim", "order"), CASES)
def test_scalar_stiffness_symmetric_and_singular(dim, order):
    mesh = structured_mesh(dim, 2, order=order)
    K = assemble_scalar_stiffness(mesh)
    assert abs(K - K.T).max() < 1e-12
    # constant field is in the kernel (pure Neumann)
    assert np.abs(K @ np.ones(mesh.nnodes)).max() < 1e-12


@pytest.mark.parametrize(("dim", "order"), CASES)
def test_scalar_patch_test(dim, order):
    """A linear temperature field has zero residual at interior nodes."""
    mesh = structured_mesh(dim, 3, order=order)
    K = assemble_scalar_stiffness(mesh)
    u = mesh.coords @ np.arange(1, dim + 1, dtype=float)
    residual = K @ u
    interior = np.setdiff1d(np.arange(mesh.nnodes), mesh.boundary_nodes())
    assert np.abs(residual[interior]).max() < 1e-12


@pytest.mark.parametrize(("dim", "order"), CASES)
def test_scalar_load_sums_to_source_times_volume(dim, order):
    mesh = structured_mesh(dim, 2, order=order)
    f = assemble_scalar_load(mesh, source=3.0)
    assert f.sum() == pytest.approx(3.0 * mesh.total_volume())


def test_scalar_load_accepts_nodal_source():
    mesh = structured_mesh(2, 2, order=1)
    f_const = assemble_scalar_load(mesh, source=2.0)
    f_nodal = assemble_scalar_load(mesh, source=np.full(mesh.nnodes, 2.0))
    assert np.allclose(f_const, f_nodal)
    with pytest.raises(ValueError):
        assemble_scalar_load(mesh, source=np.ones(3))


def test_conductivity_scales_stiffness():
    mesh = structured_mesh(2, 2, order=1)
    K1 = assemble_scalar_stiffness(mesh, conductivity=1.0)
    K5 = assemble_scalar_stiffness(mesh, conductivity=5.0)
    assert abs(K5 - 5.0 * K1).max() < 1e-12


def test_2d_heat_dirichlet_solution_matches_analytic():
    """1D conduction through the unit square: u = x (q = 0, u(0)=0, u(1)=1)."""
    mesh = structured_mesh(2, 8, order=1)
    K = assemble_scalar_stiffness(mesh)
    left = mesh.boundary_nodes("xmin")
    right = mesh.boundary_nodes("xmax")
    fixed = np.concatenate([left, right])
    values = np.concatenate([np.zeros(left.size), np.ones(right.size)])
    free = np.setdiff1d(np.arange(mesh.nnodes), fixed)
    rhs = -K[np.ix_(free, fixed)] @ values
    u = np.zeros(mesh.nnodes)
    u[fixed] = values
    u[free] = spla.spsolve(K[np.ix_(free, free)].tocsc(), rhs)
    assert np.allclose(u, mesh.coords[:, 0], atol=1e-10)


@pytest.mark.parametrize(("dim", "order"), CASES)
def test_elasticity_stiffness_symmetric_psd(dim, order):
    mesh = structured_mesh(dim, 2, order=order)
    K = assemble_elasticity_stiffness(mesh)
    assert abs(K - K.T).max() < 1e-11
    eigs = np.linalg.eigvalsh(K.toarray())
    assert eigs.min() > -1e-10


@pytest.mark.parametrize("dim", [2, 3])
def test_elasticity_rigid_body_modes_in_kernel(dim):
    mesh = structured_mesh(dim, 2, order=2)
    physics = LinearElasticityProblem()
    K = physics.assemble_stiffness(mesh)
    R = physics.kernel_basis(mesh)
    expected_modes = 3 if dim == 2 else 6
    assert R.shape == (mesh.nnodes * dim, expected_modes)
    assert np.abs(K @ R).max() < 1e-11
    # the kernel dimension is exactly the number of rigid body modes
    eigs = np.linalg.eigvalsh(K.toarray())
    assert np.sum(eigs < 1e-10 * eigs.max()) == expected_modes


@pytest.mark.parametrize("dim", [2, 3])
def test_elasticity_kernel_is_orthonormal(dim):
    mesh = structured_mesh(dim, 2, order=1)
    R = LinearElasticityProblem().kernel_basis(mesh)
    assert np.allclose(R.T @ R, np.eye(R.shape[1]), atol=1e-12)


@pytest.mark.parametrize("dim", [2, 3])
def test_elasticity_load_resultant(dim):
    mesh = structured_mesh(dim, 2, order=1)
    force = (0.5, -2.0, 1.0)[:dim]
    f = assemble_elasticity_load(mesh, body_force=force)
    for d in range(dim):
        assert f[d::dim].sum() == pytest.approx(force[d] * mesh.total_volume())
    with pytest.raises(ValueError):
        assemble_elasticity_load(mesh, body_force=(1.0,) * (dim + 1))


def test_element_geometry_determinants():
    mesh = structured_mesh(2, 2, order=1)
    inv_jac, det = element_geometry(mesh)
    assert det.shape == (mesh.ncells,)
    # each triangle of a 2x2 grid has area 1/8 -> |det J| = 2 * area
    assert np.allclose(det, 0.25)
    assert inv_jac.shape == (mesh.ncells, 2, 2)


def test_heat_problem_facade():
    mesh = structured_mesh(2, 2, order=1)
    heat = HeatTransferProblem(conductivity=2.0, source=3.0)
    assert heat.ndofs(mesh) == mesh.nnodes
    assert heat.name == "heat"
    K = heat.assemble_stiffness(mesh)
    assert np.abs(K @ heat.kernel_basis(mesh)).max() < 1e-12


def test_elasticity_problem_facade():
    mesh = structured_mesh(3, 2, order=1)
    physics = LinearElasticityProblem(body_force=(0.0, 0.0, -9.81))
    assert physics.ndofs(mesh) == 3 * mesh.nnodes
    assert physics.dofs_per_node_for(mesh) == 3
    assert physics.name == "elasticity"
    with pytest.raises(AttributeError):
        _ = physics.dofs_per_node
    with pytest.raises(ValueError):
        LinearElasticityProblem(poisson=0.5)
