"""Tests of the Dirichlet boundary helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fem.boundary import dirichlet_dofs, node_dofs
from repro.fem.mesh import structured_mesh


def test_node_dofs_expansion():
    dofs = node_dofs(np.array([0, 2]), dofs_per_node=3)
    assert dofs.tolist() == [0, 1, 2, 6, 7, 8]


def test_scalar_dirichlet_dofs():
    mesh = structured_mesh(2, 3, order=1)
    dofs = dirichlet_dofs(mesh, ("xmin",), dofs_per_node=1)
    assert np.array_equal(dofs, mesh.boundary_nodes("xmin"))


def test_vector_dirichlet_dofs_all_components():
    mesh = structured_mesh(2, 2, order=1)
    nodes = mesh.boundary_nodes("ymin")
    dofs = dirichlet_dofs(mesh, ("ymin",), dofs_per_node=2)
    assert dofs.size == 2 * nodes.size
    assert set(dofs // 2) == set(nodes.tolist())


def test_vector_dirichlet_dofs_single_component():
    mesh = structured_mesh(2, 2, order=1)
    dofs = dirichlet_dofs(mesh, ("ymin",), dofs_per_node=2, components=(1,))
    assert np.all(dofs % 2 == 1)


def test_multiple_faces_deduplicated():
    mesh = structured_mesh(2, 2, order=1)
    dofs = dirichlet_dofs(mesh, ("xmin", "ymin"), dofs_per_node=1)
    # the corner node is shared but appears once
    assert dofs.size == np.unique(dofs).size
    assert dofs.size == 2 * 3 - 1


def test_empty_faces_gives_empty_array():
    mesh = structured_mesh(2, 2, order=1)
    assert dirichlet_dofs(mesh, (), dofs_per_node=1).size == 0


def test_invalid_component_rejected():
    mesh = structured_mesh(2, 2, order=1)
    with pytest.raises(ValueError):
        dirichlet_dofs(mesh, ("xmin",), dofs_per_node=2, components=(2,))


def test_invalid_face_for_dimension_rejected():
    mesh = structured_mesh(2, 2, order=1)
    with pytest.raises(ValueError):
        mesh.boundary_nodes("zmin")
