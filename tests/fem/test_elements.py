"""Tests of the reference elements (shape functions and gradients)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fem.elements import get_reference_element
from repro.fem.quadrature import simplex_quadrature


EXPECTED_NNODES = {(2, 1): 3, (2, 2): 6, (3, 1): 4, (3, 2): 10}


def _node_coordinates(ref):
    """Reference coordinates of the element nodes (vertices then mid-edges)."""
    verts = np.vstack([np.zeros(ref.dim), np.eye(ref.dim)])
    if ref.order == 1:
        return verts
    mids = np.array([(verts[a] + verts[b]) / 2.0 for a, b in ref.edges])
    return np.vstack([verts, mids])


@pytest.mark.parametrize(("dim", "order"), list(EXPECTED_NNODES))
def test_node_counts(dim, order):
    ref = get_reference_element(dim, order)
    assert ref.nnodes == EXPECTED_NNODES[(dim, order)]


@pytest.mark.parametrize(("dim", "order"), list(EXPECTED_NNODES))
def test_partition_of_unity(dim, order):
    ref = get_reference_element(dim, order)
    rule = simplex_quadrature(dim, 3)
    shapes = ref.shape_functions(rule.points)
    assert np.allclose(shapes.sum(axis=1), 1.0)


@pytest.mark.parametrize(("dim", "order"), list(EXPECTED_NNODES))
def test_gradients_sum_to_zero(dim, order):
    ref = get_reference_element(dim, order)
    rule = simplex_quadrature(dim, 3)
    grads = ref.shape_gradients(rule.points)
    assert np.allclose(grads.sum(axis=1), 0.0, atol=1e-13)


@pytest.mark.parametrize(("dim", "order"), list(EXPECTED_NNODES))
def test_kronecker_delta_at_nodes(dim, order):
    """Shape function ``i`` equals 1 at node ``i`` and 0 at the other nodes."""
    ref = get_reference_element(dim, order)
    nodes = _node_coordinates(ref)
    values = ref.shape_functions(nodes)
    assert np.allclose(values, np.eye(ref.nnodes), atol=1e-13)


@pytest.mark.parametrize(("dim", "order"), list(EXPECTED_NNODES))
def test_gradients_match_finite_differences(dim, order):
    ref = get_reference_element(dim, order)
    rng = np.random.default_rng(3)
    # interior points (strictly inside the simplex)
    pts = rng.dirichlet(np.ones(dim + 1), size=5)[:, :dim] * 0.9 + 0.02
    grads = ref.shape_gradients(pts)
    eps = 1e-7
    for axis in range(dim):
        shifted_plus = pts.copy()
        shifted_plus[:, axis] += eps
        shifted_minus = pts.copy()
        shifted_minus[:, axis] -= eps
        fd = (
            ref.shape_functions(shifted_plus) - ref.shape_functions(shifted_minus)
        ) / (2 * eps)
        assert np.allclose(grads[:, :, axis], fd, atol=1e-6)


def test_linear_element_exactly_reproduces_linear_fields():
    ref = get_reference_element(2, 1)
    pts = np.array([[0.2, 0.3], [0.1, 0.6]])
    shapes = ref.shape_functions(pts)
    nodes = _node_coordinates(ref)
    field = 2.0 + 3.0 * nodes[:, 0] - 1.5 * nodes[:, 1]
    interpolated = shapes @ field
    expected = 2.0 + 3.0 * pts[:, 0] - 1.5 * pts[:, 1]
    assert np.allclose(interpolated, expected)


def test_quadratic_element_exactly_reproduces_quadratic_fields():
    ref = get_reference_element(3, 2)
    pts = np.array([[0.2, 0.3, 0.1], [0.1, 0.1, 0.5]])
    nodes = _node_coordinates(ref)

    def f(x):
        return 1.0 + x[:, 0] ** 2 - 2.0 * x[:, 1] * x[:, 2] + 0.5 * x[:, 2]

    interpolated = ref.shape_functions(pts) @ f(nodes)
    assert np.allclose(interpolated, f(pts))


@pytest.mark.parametrize("bad", [(1, 1), (4, 1), (2, 3), (2, 0)])
def test_invalid_element_rejected(bad):
    with pytest.raises(ValueError):
        get_reference_element(*bad)


def test_quadrature_degree_property():
    assert get_reference_element(2, 1).quadrature_degree == 1
    assert get_reference_element(3, 2).quadrature_degree == 2
