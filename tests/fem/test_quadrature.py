"""Tests of the simplex quadrature rules."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.fem.quadrature import simplex_quadrature


REFERENCE_VOLUME = {2: 0.5, 3: 1.0 / 6.0}


def _monomial_integral_over_simplex(dim: int, powers: tuple[int, ...]) -> float:
    """Exact integral of ``x^a y^b (z^c)`` over the reference simplex.

    Uses the classic formula ``∫ x^a y^b z^c = a! b! c! / (a+b+c+dim)!``.
    """
    from math import factorial

    num = 1.0
    for p in powers:
        num *= factorial(p)
    return num / factorial(sum(powers) + dim)


@pytest.mark.parametrize("dim", [2, 3])
@pytest.mark.parametrize("degree", [1, 2, 3])
def test_weights_sum_to_reference_volume(dim, degree):
    rule = simplex_quadrature(dim, degree)
    assert rule.weights.sum() == pytest.approx(REFERENCE_VOLUME[dim])


@pytest.mark.parametrize("dim", [2, 3])
@pytest.mark.parametrize("degree", [1, 2, 3])
def test_points_inside_simplex(dim, degree):
    rule = simplex_quadrature(dim, degree)
    assert np.all(rule.points >= -1e-12)
    assert np.all(rule.points.sum(axis=1) <= 1.0 + 1e-12)
    assert rule.points.shape[1] == dim
    assert rule.npoints == rule.weights.shape[0]


@pytest.mark.parametrize("dim", [2, 3])
@pytest.mark.parametrize("requested", [1, 2, 3])
def test_polynomial_exactness(dim, requested):
    """The rule integrates every monomial up to its exactness degree."""
    rule = simplex_quadrature(dim, requested)
    for powers in itertools.product(range(rule.degree + 1), repeat=dim):
        if sum(powers) > rule.degree:
            continue
        values = np.ones(rule.npoints)
        for axis, p in enumerate(powers):
            values *= rule.points[:, axis] ** p
        approx = float(rule.weights @ values)
        exact = _monomial_integral_over_simplex(dim, powers)
        assert approx == pytest.approx(exact, rel=1e-12, abs=1e-14), powers


@pytest.mark.parametrize("dim", [2, 3])
def test_higher_degree_request_gives_at_least_that_degree(dim):
    rule = simplex_quadrature(dim, 3)
    assert rule.degree >= 3


def test_invalid_dimension_rejected():
    with pytest.raises(ValueError):
        simplex_quadrature(4, 2)


@pytest.mark.parametrize("dim", [2, 3])
def test_degree_one_is_single_point(dim):
    rule = simplex_quadrature(dim, 1)
    assert rule.npoints == 1
    # The single point is the centroid.
    assert np.allclose(rule.points[0], 1.0 / (dim + 1))
