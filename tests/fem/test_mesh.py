"""Tests of the structured mesh generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fem.mesh import structured_mesh


@pytest.mark.parametrize("dim", [2, 3])
@pytest.mark.parametrize("order", [1, 2])
@pytest.mark.parametrize("n", [1, 2, 3])
def test_counts_and_volume(dim, order, n):
    mesh = structured_mesh(dim, n, order=order)
    cells_per_box = 2 if dim == 2 else 6
    assert mesh.ncells == cells_per_box * n**dim
    vertices = (n + 1) ** dim
    if order == 1:
        assert mesh.nnodes == vertices
    else:
        assert mesh.nnodes > vertices
    assert mesh.total_volume() == pytest.approx(1.0)


@pytest.mark.parametrize("dim", [2, 3])
def test_anisotropic_cell_counts(dim):
    shape = (2, 3) if dim == 2 else (2, 3, 1)
    mesh = structured_mesh(dim, shape, order=1)
    assert mesh.ncells_per_dim == shape
    assert mesh.total_volume() == pytest.approx(1.0)


@pytest.mark.parametrize("dim", [2, 3])
@pytest.mark.parametrize("order", [1, 2])
def test_lattice_coordinates_match_positions(dim, order):
    mesh = structured_mesh(dim, 2, order=order)
    half_cell = (mesh.box_size / np.array(mesh.ncells_per_dim)) / 2.0
    reconstructed = mesh.origin + mesh.lattice * half_cell
    assert np.allclose(reconstructed, mesh.coords)


def test_lattice_consistency_between_subdomain_meshes():
    """Two adjacent subdomain meshes agree on interface lattice coordinates."""
    left = structured_mesh(
        2, 2, order=2, origin=(0.0, 0.0), box_size=(0.5, 1.0),
        global_cell_size=(0.25, 0.5), lattice_offset=(0, 0),
    )
    right = structured_mesh(
        2, 2, order=2, origin=(0.5, 0.0), box_size=(0.5, 1.0),
        global_cell_size=(0.25, 0.5), lattice_offset=(4, 0),
    )
    left_face = {tuple(l) for l in left.lattice[left.boundary_nodes("xmax")]}
    right_face = {tuple(l) for l in right.lattice[right.boundary_nodes("xmin")]}
    assert left_face == right_face
    assert len(left_face) == 5  # 3 vertices + 2 mid-edge nodes


@pytest.mark.parametrize("face", ["xmin", "xmax", "ymin", "ymax"])
def test_boundary_nodes_2d(face):
    mesh = structured_mesh(2, 3, order=1)
    nodes = mesh.boundary_nodes(face)
    assert nodes.size == 4
    axis = {"x": 0, "y": 1}[face[0]]
    value = 0.0 if face.endswith("min") else 1.0
    assert np.allclose(mesh.coords[nodes, axis], value)


def test_boundary_nodes_whole_boundary_3d():
    mesh = structured_mesh(3, 2, order=1)
    boundary = mesh.boundary_nodes()
    assert boundary.size == 27 - 1  # all but the single interior node


def test_quadratic_midpoints_lie_on_edges():
    mesh = structured_mesh(2, 2, order=2)
    ref = mesh.reference_element
    for cell in mesh.cells:
        verts = mesh.coords[cell[:3]]
        for k, (a, b) in enumerate(ref.edges):
            mid = mesh.coords[cell[3 + k]]
            assert np.allclose(mid, 0.5 * (verts[a] + verts[b]))


def test_cells_reference_valid_nodes():
    mesh = structured_mesh(3, 2, order=2)
    assert mesh.cells.min() >= 0
    assert mesh.cells.max() < mesh.nnodes
    # no degenerate cells
    assert np.all(mesh.cell_volumes() > 0.0)


def test_shifted_box():
    mesh = structured_mesh(2, 2, order=1, origin=(1.0, 2.0), box_size=(2.0, 4.0))
    assert mesh.coords[:, 0].min() == pytest.approx(1.0)
    assert mesh.coords[:, 0].max() == pytest.approx(3.0)
    assert mesh.total_volume() == pytest.approx(8.0)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"dim": 4, "ncells_per_dim": 2},
        {"dim": 2, "ncells_per_dim": 2, "order": 3},
        {"dim": 2, "ncells_per_dim": 0},
        {"dim": 3, "ncells_per_dim": (2, 2)},
        {"dim": 2, "ncells_per_dim": 2, "origin": (0.0,)},
    ],
)
def test_invalid_arguments_rejected(kwargs):
    with pytest.raises(ValueError):
        structured_mesh(**kwargs)


def test_wrong_connectivity_width_rejected():
    mesh = structured_mesh(2, 2, order=1)
    from repro.fem.mesh import Mesh

    with pytest.raises(ValueError):
        Mesh(
            dim=2,
            order=2,  # quadratic expects 6 nodes per cell, connectivity has 3
            coords=mesh.coords,
            cells=mesh.cells,
            lattice=mesh.lattice,
            origin=mesh.origin,
            box_size=mesh.box_size,
            ncells_per_dim=mesh.ncells_per_dim,
        )
