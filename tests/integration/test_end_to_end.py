"""Cross-module integration tests.

These tests exercise the full pipeline (FEM assembly → decomposition →
sparse factorization → simulated GPU assembly → PCPG → primal recovery) on
small but non-trivial problems and check the physical plausibility of the
results, not just internal consistency.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.decomposition import decompose_box
from repro.fem.elasticity import LinearElasticityProblem
from repro.fem.heat import HeatTransferProblem
from repro.feti.config import DualOperatorApproach
from repro.api import SolverSpec
from repro.feti.problem import FetiProblem
from repro.feti.solver import FetiSolver, PreconditionerKind
from repro.analysis.amortization import ApproachTiming, amortization_point


def _options(approach, machine_config, tol=1e-9):
    assembly = "table2" if (approach.is_explicit and approach.uses_gpu) else None
    return SolverSpec(
        approach=approach,
        preconditioner=PreconditionerKind.LUMPED,
        tolerance=tol,
        max_iterations=500,
        machine=machine_config,
        assembly=assembly,
    )


def test_heat_solution_is_physically_plausible(small_machine_config):
    """Heated square with one cold edge: temperatures are positive and peak away
    from the Dirichlet boundary."""
    heat = HeatTransferProblem(conductivity=1.0, source=1.0)
    dec = decompose_box(2, 2, 4, order=2)
    problem = FetiProblem.from_physics(heat, dec, dirichlet_faces=("xmin",))
    solver = FetiSolver(
        problem, _options(DualOperatorApproach.EXPLICIT_GPU_MODERN, small_machine_config)
    )
    solution = solver.solve()
    assert solution.converged
    for sub, u in zip(problem.subdomains, solution.primal):
        assert u.min() > -1e-8
        # the Dirichlet face is at temperature ~0
        cold = np.abs(sub.mesh.coords[:, 0]) < 1e-12
        if cold.any():
            assert np.abs(u[cold]).max() < 1e-6
    # the hottest point is on the far (xmax) side
    all_u = np.concatenate(solution.primal)
    all_x = np.concatenate([s.mesh.coords[:, 0] for s in problem.subdomains])
    assert all_x[np.argmax(all_u)] > 0.5


def test_elasticity_beam_bends_downwards(small_machine_config):
    """A cantilever under gravity deflects downwards, most at the free end."""
    physics = LinearElasticityProblem(young=100.0, poisson=0.3, body_force=(0.0, -1.0))
    dec = decompose_box(2, (2, 1), 3, order=1)
    problem = FetiProblem.from_physics(physics, dec, dirichlet_faces=("xmin",))
    solver = FetiSolver(
        problem, _options(DualOperatorApproach.IMPLICIT_MKL, small_machine_config)
    )
    solution = solver.solve()
    assert solution.converged
    tip_deflections = []
    for sub, u in zip(problem.subdomains, solution.primal):
        uy = u[1::2]
        assert uy.max() < 1e-8  # nothing moves upwards (beyond round-off)
        at_tip = np.abs(sub.mesh.coords[:, 0] - 1.0) < 1e-12
        if at_tip.any():
            tip_deflections.append(uy[at_tip].min())
    assert min(tip_deflections) < -1e-4


def test_consistency_across_all_approaches_on_3d_heat(small_machine_config):
    """All nine approaches give the same λ and the same primal solution."""
    heat = HeatTransferProblem()
    dec = decompose_box(3, (2, 1, 1), 2, order=1)
    problem = FetiProblem.from_physics(heat, dec, dirichlet_faces=("xmin",))
    reference = None
    for approach in DualOperatorApproach:
        solver = FetiSolver(problem, _options(approach, small_machine_config))
        solution = solver.solve()
        assert solution.converged, approach
        u = np.concatenate(solution.primal)
        if reference is None:
            reference = u
        else:
            assert np.allclose(u, reference, atol=1e-6), approach


def test_amortization_behaviour_matches_paper_narrative(small_machine_config):
    """The mechanisms behind the paper's amortization story hold on a small
    problem: explicit GPU preprocessing is the expensive phase (it assembles
    the ``F̃ᵢ``), the explicit GPU application beats the implicit GPU
    application, and for small subdomains the CPU implicit approach remains
    the fastest per application — exactly the regime where the paper says the
    acceleration does not pay off (CUDA latency dominates)."""
    heat = HeatTransferProblem()
    dec = decompose_box(3, (2, 1, 1), 3, order=1)
    problem = FetiProblem.from_physics(heat, dec, dirichlet_faces=("xmin",))

    timings = {}
    for approach in (
        DualOperatorApproach.IMPLICIT_MKL,
        DualOperatorApproach.IMPLICIT_GPU_MODERN,
        DualOperatorApproach.EXPLICIT_GPU_MODERN,
    ):
        solver = FetiSolver(problem, _options(approach, small_machine_config, tol=1e-8))
        solver.preprocess()
        operator = solver.operator
        operator.apply(np.zeros(problem.n_lambda))
        timings[approach] = ApproachTiming(
            approach.value,
            preprocessing_seconds=operator.preprocessing_time,
            application_seconds=operator.application_time,
        )

    implicit_cpu = timings[DualOperatorApproach.IMPLICIT_MKL]
    implicit_gpu = timings[DualOperatorApproach.IMPLICIT_GPU_MODERN]
    explicit_gpu = timings[DualOperatorApproach.EXPLICIT_GPU_MODERN]
    # assembling F̃ᵢ costs more than just factorizing
    assert explicit_gpu.preprocessing_seconds > implicit_cpu.preprocessing_seconds
    # on the GPU, the explicit application beats the implicit one
    assert explicit_gpu.application_seconds < implicit_gpu.application_seconds
    # small subdomains: CUDA latency dominates, the CPU stays ahead per
    # application, hence no amortization point against the CPU baseline here
    assert amortization_point(explicit_gpu, implicit_cpu) is None
    # but the explicit GPU approach does amortize against the implicit GPU one
    point = amortization_point(explicit_gpu, implicit_gpu)
    assert point is not None and point >= 0


def test_dirichlet_values_respected(small_machine_config):
    """Non-homogeneous Dirichlet data enters through c and shows up in u."""
    heat = HeatTransferProblem(source=0.0)
    dec = decompose_box(2, 2, 3, order=1)
    problem = FetiProblem.from_physics(
        heat, dec, dirichlet_faces=("xmin",), dirichlet_value=5.0
    )
    solver = FetiSolver(
        problem, _options(DualOperatorApproach.IMPLICIT_CHOLMOD, small_machine_config)
    )
    solution = solver.solve()
    assert solution.converged
    # with zero source and a single Dirichlet face the solution is constant 5
    for u in solution.primal:
        assert np.allclose(u, 5.0, atol=1e-6)
