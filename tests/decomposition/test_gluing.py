"""Tests of the Total-FETI gluing construction."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.decomposition import build_gluing, decompose_box
from repro.fem.heat import HeatTransferProblem
from repro.fem.mesh import structured_mesh


@pytest.fixture(scope="module")
def simple_decomposition():
    return decompose_box(2, 2, 2, order=1)


@pytest.fixture(scope="module")
def simple_gluing(simple_decomposition):
    return build_gluing(simple_decomposition, dofs_per_node=1, dirichlet_faces=("xmin",))


def test_counts(simple_gluing):
    g = simple_gluing
    assert g.n_lambda == g.n_gluing + g.n_dirichlet
    assert g.n_lambda == g.c.shape[0]
    assert len(g.lambda_subdomains) == g.n_lambda
    # xmin face: 2 subdomains x 3 boundary nodes = 6 Dirichlet rows
    assert g.n_dirichlet == 6


def test_local_matrices_are_signed_boolean(simple_gluing):
    for sub in simple_gluing.per_subdomain:
        if sub.B.nnz:
            assert set(np.unique(sub.B.data)) <= {-1.0, 1.0}
        assert sub.B.shape[0] == sub.lambda_ids.shape[0]
        assert np.all(np.diff(sub.lambda_ids) > 0)


def test_gluing_rows_have_two_entries_dirichlet_rows_one(simple_decomposition, simple_gluing):
    g = simple_gluing
    ndofs = [s.mesh.nnodes for s in simple_decomposition.subdomains]
    B = g.global_B(ndofs)
    row_nnz = np.diff(B.indptr)
    assert np.all(row_nnz[: g.n_gluing] == 2)
    assert np.all(row_nnz[g.n_gluing :] == 1)
    # gluing rows sum to zero (u_a - u_b), Dirichlet rows to one
    row_sums = np.asarray(B.sum(axis=1)).ravel()
    assert np.allclose(row_sums[: g.n_gluing], 0.0)
    assert np.allclose(row_sums[g.n_gluing :], 1.0)


def test_global_B_has_full_row_rank(simple_decomposition, simple_gluing):
    g = simple_gluing
    ndofs = [s.mesh.nnodes for s in simple_decomposition.subdomains]
    B = g.global_B(ndofs).toarray()
    assert np.linalg.matrix_rank(B) == g.n_lambda


def test_multiplicity(simple_decomposition, simple_gluing):
    # the centre node of a 2x2 decomposition is shared by all four subdomains
    maxima = [sub.dof_multiplicity.max() for sub in simple_gluing.per_subdomain]
    assert max(maxima) == 4
    assert all(sub.dof_multiplicity.min() == 1 for sub in simple_gluing.per_subdomain)


def test_dirichlet_value_propagates_to_c():
    dec = decompose_box(2, 2, 2, order=1)
    g = build_gluing(dec, dofs_per_node=1, dirichlet_faces=("xmin",), dirichlet_value=7.5)
    assert np.allclose(g.c[: g.n_gluing], 0.0)
    assert np.allclose(g.c[g.n_gluing :], 7.5)


def test_vector_dofs_gluing():
    dec = decompose_box(2, (2, 1), 2, order=1)
    g = build_gluing(dec, dofs_per_node=2, dirichlet_faces=("xmin",))
    # the interface has 3 shared nodes and none are on xmin -> 3*2 gluing rows
    assert g.n_gluing == 6
    # xmin face of the left subdomain: 3 nodes x 2 components
    assert g.n_dirichlet == 6


@pytest.mark.parametrize("dim,order", [(2, 1), (2, 2), (3, 1)])
def test_torn_system_reproduces_global_solution(dim, order):
    """The saddle-point system with B reproduces the unpartitioned FEM solve."""
    subs = 2 if dim == 2 else (2, 1, 1)
    cells = 3 if dim == 2 else 2
    dec = decompose_box(dim, subs, cells, order=order)
    heat = HeatTransferProblem()
    g = build_gluing(dec, dofs_per_node=1, dirichlet_faces=("xmin",))

    Kblocks = [heat.assemble_stiffness(s.mesh) for s in dec.subdomains]
    fblocks = [heat.assemble_load(s.mesh) for s in dec.subdomains]
    ndofs = [s.mesh.nnodes for s in dec.subdomains]
    Kbig = sp.block_diag(Kblocks).tocsr()
    B = g.global_B(ndofs)
    system = sp.bmat([[Kbig, B.T], [B, None]]).tocsc()
    rhs = np.concatenate([np.concatenate(fblocks), g.c])
    u = spla.spsolve(system, rhs)[: Kbig.shape[0]]

    # unpartitioned reference
    if dim == 2:
        global_cells = (2 * cells, 2 * cells)
    else:
        global_cells = (2 * cells, cells, cells)
    gm = structured_mesh(dim, global_cells, order=order)
    Kg = heat.assemble_stiffness(gm)
    fg = heat.assemble_load(gm)
    fixed = gm.boundary_nodes("xmin")
    free = np.setdiff1d(np.arange(gm.nnodes), fixed)
    ug = np.zeros(gm.nnodes)
    ug[free] = spla.spsolve(Kg[np.ix_(free, free)].tocsc(), fg[free])
    reference = {tuple(l): ug[i] for i, l in enumerate(gm.lattice)}

    offset = 0
    for s in dec.subdomains:
        for i, lattice in enumerate(s.mesh.lattice):
            assert u[offset + i] == pytest.approx(reference[tuple(lattice)], abs=1e-9)
        offset += s.mesh.nnodes
