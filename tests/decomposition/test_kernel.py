"""Tests of the kernel bases and the fixing-node regularization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.decomposition import decompose_box, regularize_stiffness, select_fixing_nodes
from repro.fem.elasticity import LinearElasticityProblem
from repro.fem.heat import HeatTransferProblem
from repro.fem.mesh import structured_mesh


CASES = [
    ("heat", 2, 1),
    ("heat", 3, 1),
    ("heat", 3, 2),
    ("elasticity", 2, 1),
    ("elasticity", 3, 1),
]


def _physics(name):
    return HeatTransferProblem() if name == "heat" else LinearElasticityProblem()


def _dofs_per_node(name, dim):
    return 1 if name == "heat" else dim


@pytest.mark.parametrize(("name", "dim", "order"), CASES)
def test_regularized_matrix_is_spd(name, dim, order):
    mesh = structured_mesh(dim, 2, order=order)
    physics = _physics(name)
    K = physics.assemble_stiffness(mesh)
    R = physics.kernel_basis(mesh)
    reg = regularize_stiffness(K, R, mesh, _dofs_per_node(name, dim))
    eigs = np.linalg.eigvalsh(reg.K_reg.toarray())
    assert eigs.min() > 0.0
    assert abs(reg.K_reg - reg.K_reg.T).max() < 1e-12


@pytest.mark.parametrize(("name", "dim", "order"), CASES)
def test_regularization_gives_exact_generalized_inverse(name, dim, order):
    """``K K_reg⁻¹ K == K`` — the property the FETI derivation relies on."""
    mesh = structured_mesh(dim, 2, order=order)
    physics = _physics(name)
    K = physics.assemble_stiffness(mesh).toarray()
    R = physics.kernel_basis(mesh)
    reg = regularize_stiffness(
        physics.assemble_stiffness(mesh), R, mesh, _dofs_per_node(name, dim)
    )
    K_reg = reg.K_reg.toarray()
    error = np.abs(K @ np.linalg.solve(K_reg, K) - K).max()
    assert error < 1e-9 * np.abs(K).max()


def test_regularization_preserves_sparsity():
    mesh = structured_mesh(3, 3, order=1)
    physics = HeatTransferProblem()
    K = physics.assemble_stiffness(mesh)
    reg = regularize_stiffness(K, physics.kernel_basis(mesh), mesh, 1)
    # only the fixing-DOF block may be added: at most len(fixing)^2 new entries
    added = reg.K_reg.nnz - K.nnz
    assert added <= reg.fixing_dofs.size ** 2


def test_fixing_nodes_are_spread_and_distinct():
    mesh = structured_mesh(3, 3, order=1)
    nodes = select_fixing_nodes(mesh, n_nodes=4)
    assert nodes.size == 4
    assert np.unique(nodes).size == 4
    coords = mesh.coords[nodes]
    # not collinear: rank of centred coordinates is >= 2
    centred = coords - coords.mean(axis=0)
    assert np.linalg.matrix_rank(centred) >= 2


def test_custom_rho_and_invalid_kernel_shape():
    mesh = structured_mesh(2, 2, order=1)
    physics = HeatTransferProblem()
    K = physics.assemble_stiffness(mesh)
    R = physics.kernel_basis(mesh)
    reg = regularize_stiffness(K, R, mesh, 1, rho=42.0)
    assert reg.rho == 42.0
    with pytest.raises(ValueError):
        regularize_stiffness(K, R[:-1], mesh, 1)


def test_regularization_within_decomposition_workflow():
    dec = decompose_box(2, 2, 2, order=1)
    physics = LinearElasticityProblem()
    sub = dec.subdomains[3]
    K = physics.assemble_stiffness(sub.mesh)
    R = physics.kernel_basis(sub.mesh)
    reg = regularize_stiffness(K, R, sub.mesh, 2)
    # K_reg^{-1} restricted against the kernel reproduces rigid motions:
    # K_reg @ R = rho * M M^T R has support only on fixing DOFs
    residual = reg.K_reg @ R
    mask = np.ones(K.shape[0], dtype=bool)
    mask[reg.fixing_dofs] = False
    assert np.abs(residual[mask]).max() < 1e-10
