"""Tests of the box decomposition into subdomains and clusters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.decomposition import decompose_box


@pytest.mark.parametrize("dim", [2, 3])
@pytest.mark.parametrize("order", [1, 2])
def test_subdomain_counts_and_shapes(dim, order):
    dec = decompose_box(dim, 2, 2, order=order)
    assert dec.n_subdomains == 2**dim
    assert dec.order == order
    assert all(s.mesh.dim == dim for s in dec.subdomains)
    assert all(s.mesh.order == order for s in dec.subdomains)


def test_subdomains_tile_the_box():
    dec = decompose_box(2, (2, 3), (2, 2))
    total = sum(s.mesh.total_volume() for s in dec.subdomains)
    assert total == pytest.approx(1.0)
    # subdomain boxes are disjoint and cover the unit square
    origins = {tuple(np.round(s.mesh.origin, 12)) for s in dec.subdomains}
    assert len(origins) == dec.n_subdomains


def test_cluster_assignment_balanced():
    dec = decompose_box(2, (4, 2), 2, n_clusters=4)
    sizes = [len(dec.cluster_members(c)) for c in range(4)]
    assert sizes == [2, 2, 2, 2]
    assert dec.n_clusters == 4


def test_cluster_count_must_divide_subdomains():
    with pytest.raises(ValueError):
        decompose_box(2, 3, 2, n_clusters=2)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"dim": 4, "subdomains_per_dim": 2, "cells_per_subdomain": 2},
        {"dim": 2, "subdomains_per_dim": 0, "cells_per_subdomain": 2},
        {"dim": 2, "subdomains_per_dim": 2, "cells_per_subdomain": (2,)},
        {"dim": 2, "subdomains_per_dim": 2, "cells_per_subdomain": 2, "box_size": (1.0,)},
    ],
)
def test_invalid_arguments_rejected(kwargs):
    with pytest.raises(ValueError):
        decompose_box(**kwargs)


def test_interface_nodes_shared_via_lattice():
    """Neighbouring subdomains duplicate interface nodes with equal lattice keys."""
    dec = decompose_box(2, 2, 3, order=2)
    left, right = dec.subdomains[0], dec.subdomains[2]  # differ in x position
    assert left.grid_position[0] + 1 == right.grid_position[0]
    keys_left = {tuple(l) for l in left.mesh.lattice}
    keys_right = {tuple(l) for l in right.mesh.lattice}
    shared = keys_left & keys_right
    # an order-2 face with 3 cells has 7 nodes
    assert len(shared) == 7


def test_summary_and_helpers():
    dec = decompose_box(3, 2, 2, order=1, n_clusters=2)
    text = dec.summary()
    assert "8 subdomains" in text
    assert dec.dofs_per_subdomain == dec.subdomains[0].mesh.nnodes
