"""Tests of the consolidated SolverSpec: coercion, validation, round-trip."""

from __future__ import annotations

import pytest

from repro.api import SolverSpec, SpecError, assembly_config, solver_presets
from repro.api.workload import workload_preset
from repro.cluster.topology import MachineConfig
from repro.feti.autotune import recommend_assembly_config
from repro.feti.config import (
    AssemblyConfig,
    CudaLibraryVersion,
    DualOperatorApproach,
    FactorStorage,
    Path,
)
from repro.feti.preconditioner import PreconditionerKind

# --------------------------------------------------------------------- #
# Coercion and validation                                                #
# --------------------------------------------------------------------- #


def test_string_values_coerce_to_enums():
    spec = SolverSpec(approach="expl modern", preconditioner="dirichlet", assembly="table2")
    assert spec.approach is DualOperatorApproach.EXPLICIT_GPU_MODERN
    assert spec.preconditioner is PreconditionerKind.DIRICHLET


def test_unknown_approach_lists_valid_values():
    with pytest.raises(SpecError, match="'impl mkl'"):
        SolverSpec(approach="tpu")


def test_precision_defaults_validates_and_round_trips():
    assert SolverSpec().precision == "fp64"
    spec = SolverSpec(approach="expl mkl", precision="fp32_ir")
    assert SolverSpec.from_dict(spec.to_dict()) == spec
    assert spec.to_dict()["precision"] == "fp32_ir"
    with pytest.raises(SpecError, match="unknown precision"):
        SolverSpec(precision="fp16")


def test_precision_participates_in_spec_identity():
    base = SolverSpec(approach="expl mkl")
    fp32 = SolverSpec(approach="expl mkl", precision="fp32")
    assert base != fp32
    assert len({base, fp32, SolverSpec(approach="expl mkl")}) == 2


def test_assembly_rejected_on_approaches_that_ignore_it():
    with pytest.raises(SpecError, match="never assembles the dual"):
        SolverSpec(approach="impl mkl", assembly=AssemblyConfig())
    with pytest.raises(SpecError, match="expl legacy, expl modern, expl hybrid"):
        SolverSpec(approach="impl modern", assembly="table2")
    # Explicit CPU approaches ignore the Table-I parameters too.
    with pytest.raises(SpecError, match="silently ignored"):
        SolverSpec(approach="expl mkl", assembly="table2")


@pytest.mark.parametrize(
    ("changes", "match"),
    [
        ({"tolerance": 0.0}, "tolerance"),
        ({"max_iterations": 0}, "max_iterations"),
        ({"absolute_tolerance": -1.0}, "absolute_tolerance"),
        ({"threads_per_cluster": 0}, "threads_per_cluster"),
        ({"assembly": "table-two", "approach": "expl modern"}, "not understood"),
    ],
)
def test_numeric_validation(changes, match):
    with pytest.raises(SpecError, match=match):
        SolverSpec(**changes)


def test_numeric_fields_are_normalized_not_truncated():
    # String/float inputs normalize so equal-valued specs compare and hash
    # equal (they are Session cache keys) and round-trip through JSON.
    spec = SolverSpec(tolerance="1e-8", max_iterations=10.0, threads_per_cluster=4.0)
    assert spec.tolerance == 1e-8 and isinstance(spec.tolerance, float)
    assert spec.max_iterations == 10 and isinstance(spec.max_iterations, int)
    assert spec == SolverSpec(tolerance=1e-8, max_iterations=10, threads_per_cluster=4)
    assert SolverSpec.from_dict(spec.to_dict()) == spec
    # Fractional iteration counts are rejected, not silently truncated.
    with pytest.raises(SpecError, match="whole number"):
        SolverSpec(max_iterations=2.9)
    with pytest.raises(SpecError, match="tolerance must be a number"):
        SolverSpec(tolerance="fast")


def test_machine_and_flat_resources_are_mutually_exclusive():
    with pytest.raises(SpecError, match="not both"):
        SolverSpec(machine=MachineConfig(), threads_per_cluster=4)


def test_assembly_accepts_dict_of_string_fields():
    spec = SolverSpec(
        approach="expl modern",
        assembly={"path": "trsm", "forward_factor_storage": "sparse"},
    )
    assert isinstance(spec.assembly, AssemblyConfig)
    assert spec.assembly.path is Path.TRSM
    assert spec.assembly.forward_factor_storage is FactorStorage.SPARSE


def test_assembly_config_helper_rejects_unknown_fields():
    with pytest.raises(SpecError, match=r"unknown assembly parameter\(s\) \['pathh'\]"):
        assembly_config(pathh="trsm")
    with pytest.raises(SpecError, match="'trsm', 'syrk'"):
        assembly_config(path="cholesky")


# --------------------------------------------------------------------- #
# Wiring helpers                                                         #
# --------------------------------------------------------------------- #


def test_machine_config_resolution():
    assert SolverSpec().machine_config() is None
    cfg = SolverSpec(threads_per_cluster=4).machine_config()
    assert cfg.threads_per_cluster == 4
    assert cfg.streams_per_cluster == MachineConfig().streams_per_cluster
    machine = MachineConfig(threads_per_cluster=2, streams_per_cluster=2)
    assert SolverSpec(machine=machine).machine_config() is machine


def test_spec_carries_all_pcpg_tolerances():
    spec = SolverSpec(tolerance=1e-7, max_iterations=42, absolute_tolerance=1e-20)
    assert spec.tolerance == 1e-7
    assert spec.max_iterations == 42
    assert spec.absolute_tolerance == 1e-20


def test_table2_assembly_resolves_per_problem():
    problem = workload_preset("heat-2d-quick").build_problem()
    spec = SolverSpec(approach="expl legacy", assembly="table2")
    resolved = spec.resolve_assembly(problem)
    expected = recommend_assembly_config(
        cuda_library=CudaLibraryVersion.LEGACY,
        dim=2,
        dofs_per_subdomain=problem.subdomains[0].ndofs,
    )
    assert resolved == expected
    # None stays None: the operator's default parameters.
    assert SolverSpec(approach="expl legacy").resolve_assembly(problem) is None


# --------------------------------------------------------------------- #
# Serialization and presets                                              #
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("name", solver_presets())
def test_every_spec_preset_round_trips(name):
    spec = SolverSpec.from_preset(name)
    assert SolverSpec.from_dict(spec.to_dict()) == spec


def test_round_trip_with_explicit_assembly_config():
    spec = SolverSpec(
        approach="expl modern",
        assembly=assembly_config(path="trsm", rhs_order="col-major"),
        tolerance=1e-8,
        threads_per_cluster=4,
    )
    assert SolverSpec.from_dict(spec.to_dict()) == spec


def test_machine_escape_hatch_is_not_serializable():
    with pytest.raises(SpecError, match="not JSON-serializable"):
        SolverSpec(machine=MachineConfig()).to_dict()


def test_from_dict_rejects_unknown_fields():
    with pytest.raises(SpecError, match=r"unknown solver-spec field\(s\)"):
        SolverSpec.from_dict({"approachh": "impl mkl"})


def test_spec_serialization_is_schema_versioned():
    from repro.api import SCHEMA_VERSION

    data = SolverSpec().to_dict()
    assert data["schema_version"] == SCHEMA_VERSION
    # Versionless legacy dicts stay accepted.
    del data["schema_version"]
    assert SolverSpec.from_dict(data) == SolverSpec()
    # Unknown versions are rejected with an actionable error.
    data["schema_version"] = 999
    with pytest.raises(SpecError, match="schema_version 999.*this library speaks"):
        SolverSpec.from_dict(data)


def test_unknown_preset_lists_known_names():
    with pytest.raises(KeyError, match="gpu-modern"):
        SolverSpec.from_preset("warp-drive")


def test_preset_overrides():
    spec = SolverSpec.from_preset("gpu-modern", tolerance=1e-6)
    assert spec.approach is DualOperatorApproach.EXPLICIT_GPU_MODERN
    assert spec.assembly == "table2"
    assert spec.tolerance == 1e-6


def test_of_normalizes_none_presets_and_specs():
    assert SolverSpec.of(None) == SolverSpec()
    assert SolverSpec.of("cpu-explicit").approach is DualOperatorApproach.EXPLICIT_MKL
    spec = SolverSpec(batched=False)
    assert SolverSpec.of(spec) is spec
    with pytest.raises(TypeError, match="expected a SolverSpec"):
        SolverSpec.of(42)  # type: ignore[arg-type]


# --------------------------------------------------------------------- #
# Legacy shim removal (PR 6)                                             #
# --------------------------------------------------------------------- #


def test_legacy_option_shims_are_gone():
    """The PR-4 deprecation timeline removed the shims in PR 6."""
    import repro
    import repro.feti.pcpg
    import repro.feti.solver

    with pytest.raises(ImportError):
        from repro.feti.solver import FetiSolverOptions  # noqa: F401
    with pytest.raises(ImportError):
        from repro.feti.pcpg import PcpgOptions  # noqa: F401
    with pytest.raises(AttributeError):
        repro.FetiSolverOptions
    with pytest.raises(AttributeError):
        repro.PcpgOptions


def test_feti_solver_accepts_spec_and_preset_names():
    from repro.feti.solver import FetiSolver

    problem = workload_preset("heat-2d-quick").build_problem()
    solver = FetiSolver(problem, SolverSpec(approach="expl mkl"))
    assert solver.spec.approach is DualOperatorApproach.EXPLICIT_MKL
    by_name = FetiSolver(problem, "cpu-explicit")
    assert by_name.spec.approach is DualOperatorApproach.EXPLICIT_MKL
    with pytest.raises(TypeError, match="expected a SolverSpec"):
        FetiSolver(problem, 3.14)  # type: ignore[arg-type]


class TestExecutionField:
    """The runtime execution backend carried by the spec (PR 5)."""

    def test_default_is_unset_and_resolves_to_the_environment(self, monkeypatch):
        from repro.runtime.executor import ExecutionSpec

        spec = SolverSpec()
        assert spec.execution is None
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        assert spec.resolve_execution() == ExecutionSpec()
        monkeypatch.setenv("REPRO_EXECUTOR", "threads")
        monkeypatch.setenv("REPRO_WORKERS", "2")
        assert spec.resolve_execution() == ExecutionSpec("threads", 2)

    def test_strings_and_dicts_coerce(self):
        from repro.runtime.executor import ExecutionSpec

        assert SolverSpec(execution="processes:4").execution == ExecutionSpec(
            "processes", 4
        )
        assert SolverSpec(
            execution={"backend": "threads", "workers": 2}
        ).execution == ExecutionSpec("threads", 2)

    def test_invalid_worker_counts_fail_at_construction(self):
        with pytest.raises(SpecError, match="zero or negative"):
            SolverSpec(execution="threads:0")
        with pytest.raises(SpecError, match="zero or negative"):
            SolverSpec(execution={"backend": "processes", "workers": -2})

    def test_unknown_backend_fails_actionably(self):
        with pytest.raises(SpecError, match="serial, threads, processes"):
            SolverSpec(execution="gpu:2")

    def test_json_round_trip_preserves_execution(self):
        spec = SolverSpec(execution="processes:2")
        data = spec.to_dict()
        assert data["execution"] == {"backend": "processes", "workers": 2}
        assert SolverSpec.from_dict(data) == spec
        assert SolverSpec.from_dict(SolverSpec().to_dict()).execution is None

    def test_execution_participates_in_spec_identity(self):
        assert SolverSpec(execution="threads:2") != SolverSpec()
        assert hash(SolverSpec(execution="threads:2")) == hash(
            SolverSpec(execution="threads:2")
        )


# --------------------------------------------------------------------- #
# The coarse-problem knob (PR 8)                                         #
# --------------------------------------------------------------------- #
def test_coarse_defaults_to_auto_and_round_trips():
    spec = SolverSpec()
    assert spec.coarse == "auto"
    assert spec.to_dict()["coarse"] == "auto"
    assert SolverSpec.from_dict(spec.to_dict()) == spec

    hier = SolverSpec(coarse="hierarchical")
    assert SolverSpec.from_dict(hier.to_dict()) == hier


def test_coarse_rejects_unknown_mode_with_actionable_message():
    with pytest.raises(SpecError, match="coarse"):
        SolverSpec(coarse="sparse")


def test_coarse_auto_resolves_per_problem():
    from repro.api.workload import Workload, build_problem
    from repro.feti.solver import FetiSolver

    multi = build_problem(Workload("heat", 2, (4, 4), 3, n_clusters=4))
    single = build_problem(Workload("heat", 2, (2, 2), 3))
    assert FetiSolver(multi, SolverSpec()).projector.mode == "hierarchical"
    assert FetiSolver(single, SolverSpec()).projector.mode == "dense"
    assert FetiSolver(multi, SolverSpec(coarse="dense")).projector.mode == "dense"
