"""Tests of the cache-owning Session runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Material, RunResult, Session, SolverSpec, Workload
from repro.sparse.cache import PatternCache

W_SMALL = Workload("heat", 2, (2, 1), 3)
#: Same geometry (= same sparsity pattern), different stiffness values.
W_SCALED = Workload("heat", 2, (2, 1), 3, material=Material(conductivity=2.0))


def test_two_same_pattern_workloads_share_one_symbolic_analysis():
    """The tentpole cache assertion: one symbolic analysis for N subdomains
    x M workloads as long as the sparsity pattern is shared."""
    session = Session(SolverSpec(approach="expl mkl"))
    first = session.solve(W_SMALL)
    second = session.solve(W_SCALED)
    assert first.converged and second.converged
    stats = session.cache_stats()
    assert stats["symbolic_analyses"] == 1
    # 2 subdomains x 2 workloads = 4 analyze() calls, 3 served by the cache.
    assert stats["pattern_hits"] == 3
    # Scaling the conductivity scales the solution down by the same factor.
    u1 = np.concatenate(first.primal)
    u2 = np.concatenate(second.primal)
    np.testing.assert_allclose(u1, 2.0 * u2, atol=1e-8)


def test_repeated_solve_reuses_the_prepared_solver():
    session = Session(SolverSpec(approach="expl mkl"))
    first = session.solve(W_SMALL)
    again = session.solve(W_SMALL)
    solver = session.solver(W_SMALL)
    # One preparation and one preprocessing across both solves.
    assert solver.operator.ledger.count("preparation") == 1
    assert solver.operator.ledger.count("preprocessing") == 1
    assert session.stats.solvers_built == 1
    assert session.stats.solver_reuses >= 1
    np.testing.assert_allclose(first.lam, again.lam, atol=1e-10)


def test_per_call_spec_override_builds_a_second_solver():
    session = Session(SolverSpec(approach="impl mkl"))
    q_impl = session.solve(W_SMALL)
    q_expl = session.solve(W_SMALL, SolverSpec(approach="expl mkl"))
    assert session.stats.solvers_built == 2
    np.testing.assert_allclose(q_impl.lam, q_expl.lam, atol=1e-8)
    operator = session.operator_for(W_SMALL, "cpu-explicit")
    assert operator is session.operator_for(W_SMALL, "cpu-explicit")


def test_workloads_resolve_from_presets_and_dicts():
    session = Session()
    by_name = session.problem("heat-2d-quick")
    by_dict = session.problem(Workload.from_preset("heat-2d-quick").to_dict())
    assert by_name is by_dict
    with pytest.raises(KeyError, match="registered presets"):
        session.solve("no-such-workload")
    with pytest.raises(TypeError, match="expected a Workload"):
        session.solve(7)  # type: ignore[arg-type]


def test_run_executes_the_declared_schedule_and_restores_loads():
    workload = Workload("heat", 2, (2, 1), 2, steps=3, load_ramp=0.5)
    session = Session(SolverSpec(approach="expl mkl"))
    problem = session.problem(workload)
    base = [sub.f.copy() for sub in problem.subdomains]

    result = session.run(workload)
    assert isinstance(result, RunResult)
    assert [r.step for r in result.records] == [0, 1, 2]
    assert result.converged
    assert result.total_dual_operator_seconds > 0
    assert result.solution is not None and result.solution.converged
    # Loads are restored to their pristine values after the schedule.
    for sub, f0 in zip(problem.subdomains, base):
        np.testing.assert_array_equal(sub.f, f0)
    # Preparation ran once; each step re-ran only the numeric preprocessing.
    solver = session.solver(workload)
    assert solver.operator.ledger.count("preparation") == 1
    assert solver.operator.ledger.count("preprocessing") == 3

    # Re-running is deterministic: the ramp scales from pristine loads.
    again = session.run(workload)
    assert [r.iterations for r in again.records] == [r.iterations for r in result.records]
    np.testing.assert_allclose(again.solution.lam, result.solution.lam, atol=1e-10)


def test_run_steps_does_not_leak_ramped_loads_across_sessions():
    """Built problems are shared process-wide; the schedule's load mutations
    must never escape run_steps (regression: a fresh Session used to snapshot
    the ramped loads as pristine and return a scaled solution)."""
    workload = Workload("heat", 2, (2, 2), 4, steps=3, load_ramp=0.5)
    flat = workload.with_(steps=1, load_ramp=0.0)
    Session(SolverSpec(approach="expl mkl")).run_steps(workload)
    fresh = Session(SolverSpec(approach="expl mkl"))
    u_after = np.concatenate(fresh.solve(workload).primal)
    u_flat = np.concatenate(fresh.solve(flat).primal)
    np.testing.assert_allclose(u_after, u_flat, atol=1e-9)


def test_run_uses_the_last_step_solution_without_an_extra_solve():
    workload = Workload("heat", 2, (2, 1), 2, steps=3, load_ramp=0.5)
    session = Session(SolverSpec(approach="expl mkl"))
    result = session.run(workload)
    solver = session.solver(workload)
    # Exactly the three scheduled preprocessings/solves ran — the returned
    # solution is the final step's, not a duplicate fourth solve.
    assert solver.operator.ledger.count("preprocessing") == 3
    assert result.solution is not None
    assert result.solution.iterations == result.records[-1].iterations


def test_custom_matrix_update_is_restored_and_invalidates_preprocessing():
    """A custom update may change stiffness values (the MultiStepDriver
    contract); the session must restore them on the shared problem and must
    not reuse the schedule's last factorization afterwards."""
    workload = Workload("heat", 2, (2, 1), 3, steps=2)
    session = Session(SolverSpec(approach="expl mkl"))
    problem = session.problem(workload)
    reference = np.concatenate(session.solve(workload).primal)
    K_before = [sub.K_reg.data.copy() for sub in problem.subdomains]

    def harden(step: int, p) -> None:
        for sub in p.subdomains:
            sub.K.data *= 1.0 + step
            sub.K_reg.data *= 1.0 + step

    session.run_steps(workload, update=harden)
    # Matrix values restored on the shared problem...
    for sub, data in zip(problem.subdomains, K_before):
        np.testing.assert_array_equal(sub.K_reg.data, data)
    # ...the same session re-preprocesses instead of reusing the stale
    # factorization...
    after_same_session = np.concatenate(session.solve(workload).primal)
    np.testing.assert_allclose(after_same_session, reference, atol=1e-9)
    # ...and an independent session sees the pristine problem too.
    fresh = np.concatenate(Session(SolverSpec(approach="expl mkl")).solve(workload).primal)
    np.testing.assert_allclose(fresh, reference, atol=1e-9)


def test_ramped_final_solution_scales_with_the_last_step():
    workload = Workload("heat", 2, (2, 1), 2, steps=3, load_ramp=0.5)
    session = Session(SolverSpec(approach="impl mkl"))
    result = session.run(workload)
    flat = session.solve(workload)  # pristine loads after restore
    u_final = np.concatenate(result.solution.primal)
    u_base = np.concatenate(flat.primal)
    # Final step load scale is 1 + 0.5 * 2 = 2.0.
    np.testing.assert_allclose(u_final, 2.0 * u_base, atol=1e-8)


def test_explicit_pattern_cache_is_shared_between_sessions():
    cache = PatternCache()
    a = Session(SolverSpec(approach="expl mkl"), pattern_cache=cache)
    b = Session(SolverSpec(approach="impl mkl"), pattern_cache=cache)
    a.solve(W_SMALL)
    b.solve(W_SMALL)
    assert cache.misses == 1
    assert a.pattern_cache is b.pattern_cache


def test_scalar_reference_path_bypasses_the_session_cache():
    """blocked=False must stay a faithful per-subdomain baseline."""
    session = Session(SolverSpec(approach="expl mkl", blocked=False))
    solution = session.solve(W_SMALL)
    assert solution.converged
    assert session.pattern_cache.misses == 0
    assert session.pattern_cache.hits == 0


def test_session_spec_accepts_preset_names():
    session = Session("cpu-explicit")
    assert session.spec == SolverSpec.from_preset("cpu-explicit")


def test_autotune_returns_ranked_configurations():
    from repro.feti.config import CudaLibraryVersion

    session = Session(SolverSpec(threads_per_cluster=2, streams_per_cluster=2))
    results = session.autotune("heat-2d-quick", CudaLibraryVersion.MODERN)
    assert len(results) > 1
    times = [m.preprocessing_seconds + m.application_seconds for m in results]
    assert times == sorted(times)


def test_cache_stats_report_coarse_problem_counters():
    """PR 8: per-solve coarse timing surfaces through Session.cache_stats."""
    multi = Workload("heat", 2, (4, 4), 3, n_clusters=4)
    with Session(SolverSpec(approach="expl mkl")) as session:
        result = session.solve(multi)
        assert result.converged
        stats = session.cache_stats()
    assert stats["hierarchical_projectors"] == 1  # coarse="auto" resolved
    assert stats["coarse_solves"] >= 2  # lambda_0 and alpha at minimum
    assert stats["coarse_applies"] >= 1
    assert stats["coarse_seconds"] > 0.0


def test_cache_stats_coarse_counters_zero_before_any_solve():
    with Session(SolverSpec()) as session:
        stats = session.cache_stats()
    assert stats["coarse_applies"] == 0
    assert stats["coarse_solves"] == 0
    assert stats["coarse_seconds"] == 0.0
    assert stats["hierarchical_projectors"] == 0
