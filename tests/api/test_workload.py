"""Tests of the declarative Workload layer: validation, presets, round-trip."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    Material,
    Workload,
    WorkloadError,
    build_problem,
    workload_preset,
    workload_presets,
)

# --------------------------------------------------------------------- #
# Validation                                                             #
# --------------------------------------------------------------------- #


def test_validation_rejects_unknown_physics():
    with pytest.raises(WorkloadError, match="unknown physics 'plasma'"):
        Workload("plasma", 2, (2, 2), 4)


def test_validation_rejects_grid_dim_mismatch():
    with pytest.raises(WorkloadError, match="one grid extent per dimension"):
        Workload("heat", 3, (2, 2), 4)


@pytest.mark.parametrize(
    ("changes", "match"),
    [
        ({"dim": 4, "subdomains": (1, 1, 1, 1)}, "dim must be 2 or 3"),
        ({"subdomains": (0, 2)}, "must be >= 1"),
        ({"cells": 0}, "cells must be >= 1"),
        ({"order": 3}, "order must be 1"),
        ({"n_clusters": 9}, "n_clusters must lie in"),
        ({"dirichlet_faces": ("zmin",)}, "unknown Dirichlet face 'zmin' for dim=2"),
        ({"dirichlet_faces": ()}, "at least one box face"),
        ({"steps": 0}, "steps must be >= 1"),
        ({"load_ramp": float("inf")}, "load_ramp must be finite"),
    ],
)
def test_validation_errors_are_actionable(changes, match):
    base = dict(physics="heat", dim=2, subdomains=(2, 2), cells=4)
    base.update(changes)
    with pytest.raises(WorkloadError, match=match):
        Workload(**base)


def test_n_clusters_must_divide_the_subdomain_count():
    with pytest.raises(WorkloadError, match="must divide the subdomain count"):
        Workload("heat", 2, (3, 1), 2, n_clusters=2)
    assert Workload("heat", 2, (4, 1), 2, n_clusters=2).n_clusters == 2


def test_fractional_numeric_fields_are_rejected_not_truncated():
    with pytest.raises(WorkloadError, match="whole number"):
        Workload("heat", 2, (2, 2), 4.9)
    with pytest.raises(WorkloadError, match="whole number"):
        Workload("heat", 2, (2.7, 2), 4)
    with pytest.raises(WorkloadError, match="whole number"):
        Workload("heat", 2, (2, 2), 4, steps=1.5)


def test_string_sequences_are_rejected_not_char_split():
    with pytest.raises(WorkloadError, match=r"got the string '44'"):
        Workload("heat", 2, "44", 4)  # type: ignore[arg-type]
    with pytest.raises(WorkloadError, match="subdomains must be an integer"):
        Workload("heat", 2, ("4,4", "2"), 4)  # type: ignore[arg-type]
    with pytest.raises(WorkloadError, match="sequence of integers"):
        Workload("heat", 2, 4, 4)  # type: ignore[arg-type]
    with pytest.raises(WorkloadError, match=r"got the string 'xmin'"):
        Workload("heat", 2, (2, 2), 4, dirichlet_faces="xmin")  # type: ignore[arg-type]


def test_material_validation():
    with pytest.raises(WorkloadError, match="poisson"):
        Material(poisson=0.5)
    with pytest.raises(WorkloadError, match="body_force"):
        Material(body_force=(1.0,))
    with pytest.raises(WorkloadError, match="conductivity"):
        Material(conductivity=0.0)


def test_coercion_accepts_lists_and_dict_material():
    w = Workload(
        "heat",
        2,
        [2, 1],  # type: ignore[arg-type]
        3,
        dirichlet_faces=["xmin", "ymax"],  # type: ignore[arg-type]
        material={"conductivity": 2.0},  # type: ignore[arg-type]
    )
    assert w.subdomains == (2, 1)
    assert w.dirichlet_faces == ("xmin", "ymax")
    assert w.material == Material(conductivity=2.0)
    assert hash(w) == hash(w.with_())


# --------------------------------------------------------------------- #
# Serialization round-trip                                               #
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("name", workload_presets())
def test_every_preset_round_trips_through_dict_and_json(name):
    w = workload_preset(name)
    assert Workload.from_dict(w.to_dict()) == w
    assert Workload.from_json(w.to_json()) == w
    assert Workload.from_preset(name) is w


def test_from_dict_rejects_unknown_and_missing_fields():
    with pytest.raises(WorkloadError, match=r"unknown workload field\(s\) \['flux'\]"):
        Workload.from_dict({"physics": "heat", "dim": 2, "subdomains": [2, 1], "cells": 2, "flux": 1})
    with pytest.raises(WorkloadError, match="missing the required field 'cells'"):
        Workload.from_dict({"physics": "heat", "dim": 2, "subdomains": [2, 1]})
    with pytest.raises(WorkloadError, match="not parseable"):
        Workload.from_json("{nope")


def test_to_dict_stamps_the_schema_version():
    from repro.api import SCHEMA_VERSION

    data = Workload("heat", 2, (2, 2), 4).to_dict()
    assert data["schema_version"] == SCHEMA_VERSION


def test_from_dict_accepts_versionless_legacy_dicts():
    data = Workload("heat", 2, (2, 2), 4).to_dict()
    del data["schema_version"]
    assert Workload.from_dict(data) == Workload("heat", 2, (2, 2), 4)


def test_from_dict_rejects_unknown_schema_versions_actionably():
    data = Workload("heat", 2, (2, 2), 4).to_dict()
    data["schema_version"] = 999
    with pytest.raises(WorkloadError, match="schema_version 999.*this library speaks"):
        Workload.from_dict(data)


@st.composite
def workloads(draw) -> Workload:
    """A fuzzed corpus of *valid* workloads."""
    dim = draw(st.integers(2, 3))
    subdomains = tuple(draw(st.integers(1, 3)) for _ in range(dim))
    n_sub = 1
    for s in subdomains:
        n_sub *= s
    faces = ("xmin", "xmax", "ymin", "ymax") + (("zmin", "zmax") if dim == 3 else ())
    dirichlet = tuple(
        draw(st.lists(st.sampled_from(faces), min_size=1, max_size=3, unique=True))
    )
    material = Material(
        conductivity=draw(st.floats(0.1, 10.0)),
        source=draw(st.floats(0.1, 5.0)),
        young=draw(st.floats(1.0, 300.0)),
        poisson=draw(st.floats(0.0, 0.45)),
        body_force=draw(
            st.one_of(
                st.none(),
                st.tuples(st.floats(-2.0, 2.0), st.floats(-2.0, 2.0)),
            )
        ),
    )
    return Workload(
        physics=draw(st.sampled_from(("heat", "elasticity"))),
        dim=dim,
        subdomains=subdomains,
        cells=draw(st.integers(1, 8)),
        order=draw(st.sampled_from((1, 2))),
        n_clusters=draw(st.sampled_from([d for d in range(1, n_sub + 1) if n_sub % d == 0])),
        dirichlet_faces=dirichlet,
        steps=draw(st.integers(1, 5)),
        load_ramp=draw(st.floats(-0.5, 2.0)),
        material=material,
    )


@given(workloads())
@settings(max_examples=150, deadline=None)
def test_fuzzed_workloads_round_trip(w: Workload):
    assert Workload.from_dict(w.to_dict()) == w
    assert Workload.from_json(w.to_json()) == w
    # The round-tripped copy is interchangeable as a cache key.
    assert hash(Workload.from_dict(w.to_dict())) == hash(w)


# --------------------------------------------------------------------- #
# Presets and problem construction                                       #
# --------------------------------------------------------------------- #


def test_unknown_preset_lists_known_names():
    with pytest.raises(KeyError, match="heat-2d-quick"):
        workload_preset("no-such-preset")


def test_build_problem_is_cached_and_matches_workload():
    w = workload_preset("heat-2d-quick")
    problem = build_problem(w)
    assert problem is build_problem(w)
    assert problem is w.build_problem()
    assert problem.n_subdomains == w.n_subdomains
    assert problem.decomposition.dim == w.dim


def test_material_reaches_the_assembled_problem():
    base = Workload("heat", 2, (2, 1), 2)
    scaled = base.with_(material=Material(conductivity=3.0))
    K0 = build_problem(base).subdomains[0].K
    K3 = build_problem(scaled).subdomains[0].K
    assert abs(K3.toarray() - 3.0 * K0.toarray()).max() < 1e-12


def test_describe_mentions_the_schedule():
    w = workload_preset("heat-2d-multistep")
    assert "steps" in w.describe()
    assert w.steps == 3 and w.load_ramp == 0.5
