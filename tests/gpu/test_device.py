"""Tests of the simulated device (transfers, arena creation, streams)."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.gpu import CudaVersion, Device, DeviceProperties, MatrixOrder


@pytest.fixture()
def device():
    return Device(
        properties=DeviceProperties(memory_capacity_bytes=2 * 1024**2, default_stream_count=4),
        cuda_version=CudaVersion.LEGACY,
    )


def test_stream_creation_default_and_explicit(device):
    streams = device.create_streams()
    assert len(streams) == 4
    streams = device.create_streams(2)
    assert len(streams) == 2
    with pytest.raises(ValueError):
        device.create_streams(0)


def test_lazy_default_streams():
    device = Device()
    assert len(device.streams) == DeviceProperties().default_stream_count


def test_upload_vector_and_download(device):
    stream = device.create_streams(1)[0]
    x = np.arange(10.0)
    vec, op = device.upload_vector(x, stream, submit_time=0.0, label="x")
    assert np.array_equal(vec.array, x)
    assert vec.nbytes == 80
    assert op.duration > 0
    assert device.memory.used_bytes >= 80
    back, op2 = device.download_vector(vec, stream, submit_time=op.end_time)
    assert np.array_equal(back, x)
    assert op2.start_time >= op.end_time


def test_upload_dense_and_sparse(device):
    stream = device.create_streams(1)[0]
    a = np.eye(5)
    mat, _ = device.upload_dense(a, stream, 0.0, order=MatrixOrder.ROW_MAJOR)
    assert mat.shape == (5, 5)
    s = sp.random(20, 30, density=0.1, random_state=np.random.default_rng(0))
    smat, _ = device.upload_sparse(s, stream, 0.0, label="S")
    assert smat.shape == (20, 30)
    assert smat.nnz == s.nnz
    assert smat.nbytes > 0


def test_update_sparse_values_charges_only_values(device):
    stream = device.create_streams(1)[0]
    s = sp.identity(50, format="csr")
    smat, _ = device.upload_sparse(s, stream, 0.0)
    used_before = device.memory.used_bytes
    op = device.update_sparse_values(smat, 2.0 * s, stream, 1.0)
    assert device.memory.used_bytes == used_before  # no new allocation
    assert np.allclose(smat.matrix.diagonal(), 2.0)
    assert op.duration < device.cost_model.transfer(smat.nbytes)


def test_temporary_arena_lifecycle(device):
    device.create_streams(1)
    arena = device.allocate_temporary_arena(reserve_bytes=1024)
    assert arena.capacity_bytes > 0
    assert device.memory.free_bytes == 1024
    with pytest.raises(RuntimeError):
        device.allocate_temporary_arena()
    assert device.require_temporary() is arena


def test_require_temporary_before_creation_raises():
    device = Device()
    with pytest.raises(RuntimeError):
        device.require_temporary()


def test_synchronize_and_reset_timeline(device):
    streams = device.create_streams(3)
    streams[1].submit("k", 5.0, 0.0)
    assert device.synchronize(1.0) == 5.0
    device.reset_timeline()
    assert device.synchronize(0.0) == 0.0


def test_symmetric_triangle_upload_halves_bytes(device):
    stream = device.create_streams(1)[0]
    a = np.zeros((10, 10))
    full, _ = device.upload_dense(a, stream, 0.0)
    tri, _ = device.upload_dense(a, stream, 0.0, symmetric_triangle=True)
    assert tri.nbytes == full.nbytes // 2
