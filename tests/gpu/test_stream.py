"""Tests of the discrete-event streams and events."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.gpu.stream import Event, Stream


def test_fifo_ordering_within_a_stream():
    stream = Stream(keep_log=True)
    first = stream.submit("a", duration=2.0, submit_time=0.0)
    second = stream.submit("b", duration=1.0, submit_time=0.0)
    assert first.start_time == 0.0 and first.end_time == 2.0
    assert second.start_time == 2.0 and second.end_time == 3.0
    assert [op.name for op in stream.operations] == ["a", "b"]


def test_submission_after_cpu_time():
    stream = Stream()
    op = stream.submit("late", duration=1.0, submit_time=5.0)
    assert op.start_time == 5.0
    assert stream.tail == 6.0
    assert op.duration == 1.0


def test_streams_run_concurrently():
    s0, s1 = Stream(index=0), Stream(index=1)
    a = s0.submit("k0", duration=3.0, submit_time=0.0)
    b = s1.submit("k1", duration=2.0, submit_time=0.0)
    # both kernels start at time zero: the streams are independent
    assert a.start_time == 0.0 and b.start_time == 0.0
    assert max(s0.tail, s1.tail) == 3.0


def test_cpu_gpu_overlap_pattern():
    """CPU work for subdomain i+1 overlaps the GPU kernel of subdomain i."""
    stream = Stream()
    cpu_time = 0.0
    ends = []
    for _ in range(3):
        cpu_time += 1.0  # one unit of CPU factorization
        op = stream.submit("assemble", duration=2.0, submit_time=cpu_time)
        ends.append(op.end_time)
    # With overlap the total is cpu(1) + 3 kernels = 7, not 3*(1+2) = 9.
    assert ends[-1] == pytest.approx(7.0)


def test_wait_for_and_events():
    s0, s1 = Stream(index=0), Stream(index=1)
    op = s0.submit("producer", duration=4.0, submit_time=0.0)
    event = Event().record(s0)
    assert event.time == 4.0
    s1.wait_for(event.time)
    consumer = s1.submit("consumer", duration=1.0, submit_time=0.0)
    assert consumer.start_time == 4.0
    assert event.synchronize(0.0) == 4.0
    assert op.duration == 4.0


def test_synchronize_and_reset():
    stream = Stream(keep_log=True)
    stream.submit("k", duration=2.5, submit_time=1.0)
    assert stream.synchronize(0.0) == 3.5
    assert stream.synchronize(10.0) == 10.0
    stream.reset()
    assert stream.tail == 0.0
    assert stream.operations == []


def test_negative_duration_rejected():
    with pytest.raises(ValueError):
        Stream().submit("bad", duration=-1.0, submit_time=0.0)


@settings(max_examples=40, deadline=None)
@given(
    durations=st.lists(
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False), min_size=1, max_size=20
    ),
    submits=st.lists(
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False), min_size=1, max_size=20
    ),
)
def test_property_stream_tail_is_monotone_and_conservative(durations, submits):
    """Property: the tail never decreases and is at least the sum-free lower bound."""
    stream = Stream()
    previous_tail = 0.0
    for duration, submit in zip(durations, submits):
        op = stream.submit("k", duration=duration, submit_time=submit)
        assert op.start_time >= submit
        assert op.start_time >= previous_tail
        assert stream.tail == op.end_time >= previous_tail
        previous_tail = stream.tail
    assert stream.tail >= max(
        d for d, _ in zip(durations, submits)
    ) if durations else True
