"""Numerical tests of the simulated cuSPARSE kernels."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.gpu import CudaVersion, Device, DeviceProperties, MatrixOrder, cusparse
from repro.gpu.arrays import DeviceCsrMatrix, DeviceDenseMatrix, DeviceVector


@pytest.fixture(params=[CudaVersion.LEGACY, CudaVersion.MODERN])
def device(request):
    dev = Device(
        properties=DeviceProperties(memory_capacity_bytes=64 * 1024**2),
        cuda_version=request.param,
    )
    dev.create_streams(2)
    return dev


@pytest.fixture()
def lower_factor():
    rng = np.random.default_rng(31)
    n = 30
    L = sp.tril(sp.random(n, n, density=0.2, random_state=rng)) + sp.diags(
        2.0 + rng.random(n)
    )
    return sp.csr_matrix(L)


def test_trsm_analysis_and_solve(device, lower_factor):
    stream = device.streams[0]
    n = lower_factor.shape[0]
    dL, _ = device.upload_sparse(lower_factor, stream, 0.0, label="L")
    plan, op = cusparse.trsm_analysis(device, stream, dL, nrhs=5, submit_time=0.0)
    assert op.duration > 0
    arena = device.allocate_temporary_arena()
    rng = np.random.default_rng(0)
    B = rng.standard_normal((n, 5))
    rhs = DeviceDenseMatrix(array=B.copy())
    cusparse.trsm(device, stream, plan, dL, rhs, 0.0, arena=arena)
    assert np.allclose(lower_factor @ rhs.array, B, atol=1e-10)
    cusparse.trsm(device, stream, plan, dL, rhs, 0.0, transpose=True, arena=arena)
    # temporary workspace fully released after the kernels
    assert arena.used_bytes == 0
    if device.cuda_version is CudaVersion.MODERN:
        assert plan.persistent_bytes > 0
    plan.release()


def test_spmm_and_spmv(device):
    stream = device.streams[0]
    rng = np.random.default_rng(5)
    A = sp.random(12, 20, density=0.3, random_state=rng).tocsr()
    dA, _ = device.upload_sparse(A, stream, 0.0)
    B = rng.standard_normal((20, 4))
    out = DeviceDenseMatrix(array=np.zeros((12, 4)))
    cusparse.spmm(device, stream, dA, DeviceDenseMatrix(array=B), out, 0.0)
    assert np.allclose(out.array, A @ B)

    x = DeviceVector(array=rng.standard_normal(20))
    y = DeviceVector(array=np.zeros(12))
    cusparse.spmv(device, stream, dA, x, y, 0.0)
    assert np.allclose(y.array, A @ x.array)
    xt = DeviceVector(array=rng.standard_normal(12))
    yt = DeviceVector(array=np.zeros(20))
    cusparse.spmv(device, stream, dA, xt, yt, 0.0, transpose=True)
    assert np.allclose(yt.array, A.T @ xt.array)


def test_sparse_to_dense_and_transpose(device):
    stream = device.streams[0]
    rng = np.random.default_rng(6)
    A = sp.random(7, 11, density=0.4, random_state=rng).tocsr()
    dA, _ = device.upload_sparse(A, stream, 0.0)
    out = DeviceDenseMatrix(array=np.zeros((7, 11)))
    cusparse.sparse_to_dense(device, stream, dA, out, 0.0)
    assert np.allclose(out.array, A.toarray())
    out_t = DeviceDenseMatrix(array=np.zeros((11, 7)))
    cusparse.sparse_to_dense(device, stream, dA, out_t, 0.0, transpose=True)
    assert np.allclose(out_t.array, A.toarray().T)


def test_scatter_gather_roundtrip(device):
    stream = device.streams[0]
    rng = np.random.default_rng(8)
    cluster = DeviceVector(array=rng.standard_normal(10))
    indices = np.array([1, 3, 7])
    local = DeviceVector(array=np.zeros(3))
    cusparse.scatter(device, stream, cluster, indices, local, 0.0)
    assert np.allclose(local.array, cluster.array[indices])
    out = DeviceVector(array=np.zeros(10))
    cusparse.gather(device, stream, local, indices, out, 0.0)
    assert np.allclose(out.array[indices], local.array)
    assert np.allclose(np.delete(out.array, indices), 0.0)
    # accumulate=False overwrites instead of adding
    cusparse.gather(device, stream, local, indices, out, 0.0, accumulate=False)
    assert np.allclose(out.array[indices], local.array)


def test_csc_factor_order_changes_plan_requirements(lower_factor):
    device = Device(cuda_version=CudaVersion.LEGACY)
    stream = device.create_streams(1)[0]
    d_csr, _ = device.upload_sparse(lower_factor, stream, 0.0, order=MatrixOrder.ROW_MAJOR)
    d_csc, _ = device.upload_sparse(lower_factor, stream, 0.0, order=MatrixOrder.COL_MAJOR)
    plan_csr, _ = cusparse.trsm_analysis(device, stream, d_csr, 8, 0.0)
    plan_csc, _ = cusparse.trsm_analysis(device, stream, d_csc, 8, 0.0)
    assert plan_csc.temporary_bytes > plan_csr.temporary_bytes
    plan_col_rhs, _ = cusparse.trsm_analysis(
        device, stream, d_csr, 8, 0.0, rhs_order=MatrixOrder.COL_MAJOR
    )
    assert plan_col_rhs.temporary_bytes > plan_csr.temporary_bytes
