"""Tests of the persistent memory pool and the blocking temporary arena."""

from __future__ import annotations

import threading
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.gpu.memory import AllocationError, MemoryPool, TemporaryArena


def test_pool_basic_accounting():
    pool = MemoryPool(10_000)
    a = pool.allocate(1000, label="a")
    b = pool.allocate(100)
    assert pool.used_bytes == a.nbytes + b.nbytes
    assert pool.allocation_count == 2
    assert pool.peak_bytes == pool.used_bytes
    a.release()
    assert pool.used_bytes == b.nbytes
    # release is idempotent
    a.release()
    assert pool.used_bytes == b.nbytes


def test_pool_rounds_up_to_granularity():
    pool = MemoryPool(10_000)
    a = pool.allocate(1)
    assert a.nbytes == 256
    b = pool.allocate(257)
    assert b.nbytes == 512


def test_pool_exhaustion_raises():
    pool = MemoryPool(1024)
    pool.allocate(1024)
    with pytest.raises(AllocationError):
        pool.allocate(1)


def test_pool_context_manager():
    pool = MemoryPool(4096)
    with pool.allocate(1024):
        assert pool.used_bytes == 1024
    assert pool.used_bytes == 0


def test_pool_invalid_sizes():
    with pytest.raises(ValueError):
        MemoryPool(0)
    pool = MemoryPool(1024)
    with pytest.raises(ValueError):
        pool.allocate(-1)


def test_arena_basic_and_oversized_request():
    arena = TemporaryArena(2048)
    a = arena.allocate(512)
    assert arena.used_bytes == 512
    assert arena.free_bytes == 2048 - 512
    a.release()
    with pytest.raises(AllocationError):
        arena.allocate(4096)


def test_arena_blocks_until_memory_is_released():
    """A thread waiting for temporary memory resumes once another frees it."""
    arena = TemporaryArena(1024)
    first = arena.allocate(1024)
    acquired = threading.Event()
    results: dict[str, object] = {}

    def worker():
        allocation = arena.allocate(512, timeout=5.0)
        results["allocation"] = allocation
        acquired.set()

    thread = threading.Thread(target=worker)
    thread.start()
    time.sleep(0.05)
    assert not acquired.is_set()  # still blocked
    first.release()
    assert acquired.wait(timeout=5.0)
    thread.join(timeout=5.0)
    assert arena.blocking_waits == 1
    assert results["allocation"].nbytes == 512  # type: ignore[union-attr]


def test_arena_timeout():
    arena = TemporaryArena(1024)
    arena.allocate(1024)
    with pytest.raises(AllocationError):
        arena.allocate(512, timeout=0.05)


def test_arena_peak_tracking():
    arena = TemporaryArena(4096)
    a = arena.allocate(1024)
    b = arena.allocate(2048)
    assert arena.peak_bytes == a.nbytes + b.nbytes
    a.release()
    b.release()
    assert arena.used_bytes == 0
    assert arena.peak_bytes == 3072


def test_pool_peak_bytes_persists_across_release_and_reuse():
    """The high-water mark survives full drains and later smaller loads."""
    pool = MemoryPool(10_000)
    a = pool.allocate(4096)
    b = pool.allocate(2048)
    high_water = pool.used_bytes
    a.release()
    b.release()
    assert pool.used_bytes == 0
    c = pool.allocate(256)
    assert pool.used_bytes == 256
    assert pool.peak_bytes == high_water  # not reset by the drain
    assert pool.allocation_count == 3
    c.release()
    assert pool.free_bytes == pool.capacity_bytes


def test_arena_oversized_request_fails_fast_while_memory_is_held():
    """A request above the arena capacity must raise immediately — waiting
    for other threads to release could never satisfy it."""
    arena = TemporaryArena(1024)
    held = arena.allocate(512)
    start = time.monotonic()
    with pytest.raises(AllocationError, match="exceeds the arena"):
        arena.allocate(4096, timeout=60.0)
    assert time.monotonic() - start < 1.0  # no blocking wait happened
    assert arena.blocking_waits == 0
    assert arena.allocation_count == 1
    held.release()


def test_arena_counts_each_blocked_allocation():
    """Every allocation that had to wait bumps the counter once, even when
    several waiters pile up behind one hog."""
    arena = TemporaryArena(1024)
    hog = arena.allocate(1024)
    done = threading.Barrier(3)

    def worker():
        arena.allocate(256, timeout=5.0).release()
        done.wait(timeout=5.0)

    threads = [threading.Thread(target=worker) for _ in range(2)]
    for t in threads:
        t.start()
    time.sleep(0.05)
    hog.release()
    done.wait(timeout=5.0)
    for t in threads:
        t.join(timeout=5.0)
    assert arena.blocking_waits == 2
    assert arena.used_bytes == 0


@settings(max_examples=30, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=2000), min_size=1, max_size=30)
)
def test_property_pool_usage_never_negative_and_bounded(sizes):
    """Property: allocate-then-release in any order keeps usage within bounds."""
    capacity = 256 * 64
    pool = MemoryPool(capacity)
    live = []
    for size in sizes:
        try:
            live.append(pool.allocate(size))
        except AllocationError:
            if live:
                live.pop(0).release()
        assert 0 <= pool.used_bytes <= capacity
        assert pool.peak_bytes <= capacity
    for allocation in live:
        allocation.release()
    assert pool.used_bytes == 0
