"""Numerical tests of the simulated cuBLAS kernels."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.linalg as sla

from repro.gpu import Device, cublas
from repro.gpu.arrays import DeviceDenseMatrix, DeviceVector


@pytest.fixture()
def ctx():
    device = Device()
    stream = device.create_streams(1)[0]
    rng = np.random.default_rng(123)
    return device, stream, rng


def _dense(array, **kwargs):
    return DeviceDenseMatrix(array=np.array(array, dtype=float), **kwargs)


def test_trsm_lower_and_transposed(ctx):
    device, stream, rng = ctx
    n, k = 15, 4
    L = np.tril(rng.standard_normal((n, n))) + 4.0 * np.eye(n)
    B = rng.standard_normal((n, k))
    rhs = _dense(B)
    op = cublas.trsm(device, stream, _dense(L), rhs, 0.0, lower=True)
    assert np.allclose(L @ rhs.array, B)
    rhs2 = _dense(B)
    cublas.trsm(device, stream, _dense(L), rhs2, op.end_time, lower=True, transpose=True)
    assert np.allclose(L.T @ rhs2.array, B)
    assert stream.tail > 0


def test_trsm_upper(ctx):
    device, stream, rng = ctx
    n = 10
    U = np.triu(rng.standard_normal((n, n))) + 3.0 * np.eye(n)
    B = rng.standard_normal((n, 2))
    rhs = _dense(B)
    cublas.trsm(device, stream, _dense(U), rhs, 0.0, lower=False)
    assert np.allclose(U @ rhs.array, B)


def test_syrk_both_modes(ctx):
    device, stream, rng = ctx
    A = rng.standard_normal((20, 6))
    out = _dense(np.zeros((6, 6)))
    cublas.syrk(device, stream, _dense(A), out, 0.0, transpose=True)
    assert np.allclose(out.array, A.T @ A)
    out2 = _dense(np.zeros((20, 20)))
    cublas.syrk(device, stream, _dense(A), out2, 0.0, transpose=False)
    assert np.allclose(out2.array, A @ A.T)


def test_gemm_with_transposes(ctx):
    device, stream, rng = ctx
    A = rng.standard_normal((5, 7))
    B = rng.standard_normal((7, 3))
    out = _dense(np.zeros((5, 3)))
    cublas.gemm(device, stream, _dense(A), _dense(B), out, 0.0)
    assert np.allclose(out.array, A @ B)
    out2 = _dense(np.zeros((7, 7)))
    cublas.gemm(
        device, stream, _dense(A), _dense(A), out2, 0.0, transpose_a=True, transpose_b=False
    )
    assert np.allclose(out2.array, A.T @ A)


def test_gemv_and_symv(ctx):
    device, stream, rng = ctx
    A = rng.standard_normal((8, 8))
    S = A + A.T
    x = DeviceVector(array=rng.standard_normal(8))
    y = DeviceVector(array=np.zeros(8))
    cublas.gemv(device, stream, _dense(A), x, y, 0.0)
    assert np.allclose(y.array, A @ x.array)
    cublas.gemv(device, stream, _dense(A), x, y, 0.0, transpose=True)
    assert np.allclose(y.array, A.T @ x.array)
    cublas.symv(device, stream, _dense(S), x, y, 0.0)
    assert np.allclose(y.array, S @ x.array)


def test_geam_transpose_and_copy(ctx):
    device, stream, rng = ctx
    A = rng.standard_normal((4, 9))
    out = _dense(np.zeros((9, 4)))
    cublas.geam_transpose(device, stream, _dense(A), out, 0.0)
    assert np.allclose(out.array, A.T)
    op = cublas.axpy_like_copy(device, stream, 1024, 0.0)
    assert op.duration > 0


def test_kernels_consistent_with_scipy_reference(ctx):
    """End-to-end: GPU TRSM+SYRK assembly equals the SciPy computation."""
    device, stream, rng = ctx
    n, m = 25, 7
    A = rng.standard_normal((n, n))
    spd = A @ A.T + n * np.eye(n)
    L = np.linalg.cholesky(spd)
    Bt = rng.standard_normal((n, m))
    rhs = _dense(Bt)
    cublas.trsm(device, stream, _dense(L), rhs, 0.0, lower=True)
    out = _dense(np.zeros((m, m)))
    cublas.syrk(device, stream, rhs, out, 0.0, transpose=True)
    expected = Bt.T @ np.linalg.inv(spd) @ Bt
    assert np.allclose(out.array, expected, atol=1e-10)
