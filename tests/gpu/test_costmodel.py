"""Tests of the GPU kernel cost model."""

from __future__ import annotations

import pytest

from repro.gpu.costmodel import CudaVersion, GpuCostModel


@pytest.fixture(scope="module")
def model():
    return GpuCostModel()


def test_all_costs_positive(model):
    assert model.transfer(1024) > 0
    assert model.device_copy(1024) > 0
    assert model.dense_trsm(100, 10) > 0
    assert model.syrk(100, 200) > 0
    assert model.gemm(50, 60, 70) > 0
    assert model.gemv(100, 100) > 0
    assert model.symv(100) > 0
    assert model.spmm(1000, 10) > 0
    assert model.spmv(1000) > 0
    assert model.sparse_to_dense(100, 100, 500) > 0
    assert model.scatter_gather(100) > 0
    assert model.geam_transpose(10, 20) > 0


def test_launch_overhead_floor(model):
    """Tiny kernels are dominated by the launch overhead (Section V)."""
    assert model.gemv(2, 2) >= model.kernel_launch_overhead
    assert model.dense_trsm(2, 1) >= model.kernel_launch_overhead


def test_legacy_sparse_trsm_much_faster_than_modern(model):
    """The paper: the modern generic cuSPARSE TRSM is strongly underperforming."""
    legacy = model.sparse_trsm(10**6, 4000, 500, CudaVersion.LEGACY)
    modern = model.sparse_trsm(10**6, 4000, 500, CudaVersion.MODERN)
    assert modern > 5.0 * legacy


def test_modern_requires_large_persistent_buffers(model):
    legacy = model.sparse_trsm_buffer_bytes(
        10**6, 4000, 500, CudaVersion.LEGACY, persistent=True
    )
    modern = model.sparse_trsm_buffer_bytes(
        10**6, 4000, 500, CudaVersion.MODERN, persistent=True
    )
    assert legacy == 0
    assert modern > 10**7


def test_legacy_csc_factor_and_col_major_rhs_cost_extra(model):
    base = model.sparse_trsm(10**6, 4000, 500, CudaVersion.LEGACY)
    csc = model.sparse_trsm(10**6, 4000, 500, CudaVersion.LEGACY, csc_factor=True)
    col = model.sparse_trsm(
        10**6, 4000, 500, CudaVersion.LEGACY, col_major_rhs=True
    )
    assert csc > base
    assert col > base
    base_buf = model.sparse_trsm_buffer_bytes(10**6, 4000, 500, CudaVersion.LEGACY)
    csc_buf = model.sparse_trsm_buffer_bytes(
        10**6, 4000, 500, CudaVersion.LEGACY, csc_factor=True
    )
    col_buf = model.sparse_trsm_buffer_bytes(
        10**6, 4000, 500, CudaVersion.LEGACY, col_major_rhs=True
    )
    assert csc_buf >= base_buf + 12 * 10**6  # roughly the factor size
    assert col_buf >= base_buf + 8 * 4000 * 500  # roughly the RHS size


def test_syrk_cheaper_than_trsm_for_wide_factors(model):
    """SYRK works on the (smaller) dual dimension: F̃ assembly prefers it."""
    ndofs, n_lambda = 4000, 600
    trsm = model.dense_trsm(ndofs, n_lambda)
    syrk = model.syrk(n_lambda, ndofs)
    assert syrk < trsm


def test_gemv_bandwidth_bound_scales_linearly(model):
    t1 = model.gemv(1000, 1000)
    t2 = model.gemv(2000, 2000)
    assert 2.0 < t2 / t1 < 6.0


def test_transfer_latency_floor(model):
    assert model.transfer(0) == pytest.approx(model.pcie_latency)
    assert model.transfer(10**9) > 0.01


def test_costs_monotone_in_size(model):
    assert model.dense_trsm(100, 10) < model.dense_trsm(1000, 100)
    assert model.spmm(1000, 10) < model.spmm(100_000, 100)
    assert model.sparse_trsm_analysis(10**4, CudaVersion.LEGACY) < \
        model.sparse_trsm_analysis(10**7, CudaVersion.LEGACY)
